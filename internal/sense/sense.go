// Package sense is the word-level model of Pinatubo's modified sense
// amplifier array. It sits between the analog CSA model and the memory
// architecture: the controller selects an operation (which, physically,
// selects a reference circuit in every SA), the wordline drivers open the
// operand rows, and the SA array resolves one output bit per bitline.
//
// The package enforces the paper's operand-count rules per technology
// (n-row OR up to the sensing-margin depth, AND/XOR exactly 2 rows, INV 1
// row) and, when analog checking is enabled, cross-validates a sample of
// bit positions through the analog current-comparison path on every
// operation, so a regression in reference placement shows up in ordinary
// use, not only in the analog unit tests.
package sense

import (
	"fmt"
	"math/rand"

	"pinatubo/internal/analog"
	"pinatubo/internal/nvm"
)

// Op is a bulk bitwise operation code. It doubles as the SA mode selector:
// the memory controller writes it to the mode register, which switches the
// SA's reference circuit (or, for XOR/INV, its add-on output path).
type Op int

const (
	OpRead Op = iota // normal read (single row)
	OpAND            // 2-row AND via shifted reference
	OpOR             // n-row OR via shifted reference
	OpXOR            // 2-row XOR via hold capacitor, two micro-steps
	OpINV            // 1-row inversion from the latch differential
)

// String returns the mnemonic used in the paper.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpAND:
		return "AND"
	case OpOR:
		return "OR"
	case OpXOR:
		return "XOR"
	case OpINV:
		return "INV"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// SenseSteps returns how many sequential SA sensing steps the operation
// needs per column group: XOR takes two micro-steps, everything else one.
func (o Op) SenseSteps() int {
	if o == OpXOR {
		return analog.XORSteps
	}
	return 1
}

// OperandError reports an operand-count rule violation.
type OperandError struct {
	Op   Op
	Tech nvm.Tech
	N    int // offending operand count
	Max  int // maximum allowed (0 if the op has a fixed count instead)
	Want int // required exact count (0 if a range applies)
}

func (e *OperandError) Error() string {
	if e.Want != 0 {
		return fmt.Sprintf("sense: %s on %s requires exactly %d operand row(s), got %d",
			e.Op, e.Tech, e.Want, e.N)
	}
	return fmt.Sprintf("sense: %s on %s supports 2..%d operand rows, got %d",
		e.Op, e.Tech, e.Max, e.N)
}

// Array models the sense amplifiers of one MAT (or, because chips and MATs
// operate in lock step, of the whole rank slice being sensed).
type Array struct {
	params nvm.Params
	cfg    analog.SenseConfig
	// checkEvery > 0 enables analog cross-checking of that many sampled
	// bit positions per ComputeWords call.
	checkEvery int
	rng        *rand.Rand
	// cells is the analog-check sample scratch, reused so steady-state
	// operations allocate nothing for the cross-check.
	cells []bool
	// maxOR memoises the OR depth search: cfg and params are immutable
	// after NewArray, so the margin sweep is done once, not per operation
	// (it was the hottest non-data work on the cached execution path).
	maxOR int
}

// NewArray builds an SA array for the technology. Analog cross-checking
// samples 16 bit positions per operation by default; pass checkBits = 0 to
// disable (e.g. in throughput benchmarks) or another count to tune it.
func NewArray(p nvm.Params, cfg analog.SenseConfig, checkBits int) (*Array, error) {
	if !p.Tech.Resistive() {
		return nil, analog.ErrNotResistive
	}
	depth, err := analog.MaxORRows(cfg, p, p.MaxOpenRows)
	if err != nil {
		// Unreachable: only non-resistive techs error, rejected above.
		return nil, err
	}
	if depth > p.MaxOpenRows {
		depth = p.MaxOpenRows
	}
	return &Array{
		params:     p,
		cfg:        cfg,
		checkEvery: checkBits,
		rng:        rand.New(rand.NewSource(0x9144)), // deterministic sampling
		maxOR:      depth,
	}, nil
}

// MaxORRows returns the operand-row limit for OR on this array: the smaller
// of the architectural cap and the analog sensing-margin depth, memoised at
// construction (cfg and params never change afterwards).
func (a *Array) MaxORRows() int { return a.maxOR }

// ValidateOperands checks the operand-row count rules for op.
func (a *Array) ValidateOperands(op Op, n int) error {
	switch op {
	case OpRead, OpINV:
		if n != 1 {
			return &OperandError{Op: op, Tech: a.params.Tech, N: n, Want: 1}
		}
	case OpAND, OpXOR:
		if n != 2 {
			return &OperandError{Op: op, Tech: a.params.Tech, N: n, Want: 2}
		}
	case OpOR:
		if max := a.MaxORRows(); n < 2 || n > max {
			return &OperandError{Op: op, Tech: a.params.Tech, N: n, Max: max}
		}
	default:
		return fmt.Errorf("sense: unknown op %d", int(op))
	}
	return nil
}

// Reset restores the array's deterministic analog-check sampling stream
// to its NewArray state (pooled shard sandboxes reset through here).
func (a *Array) Reset() {
	a.rng = rand.New(rand.NewSource(0x9144))
}

// ComputeWords resolves the operation over word-parallel operand rows and
// returns the result words. Every row must have the same length. The word
// math is the functional model; if analog checking is enabled, sampled bit
// positions are re-resolved through the analog current comparison and any
// disagreement panics (it would be a modelling bug, never a data error).
func (a *Array) ComputeWords(op Op, rows [][]uint64) ([]uint64, error) {
	if len(rows) == 0 {
		return nil, a.ValidateOperands(op, 0)
	}
	out := make([]uint64, len(rows[0]))
	if err := a.ComputeWordsInto(out, op, rows); err != nil {
		return nil, err
	}
	return out, nil
}

// ComputeWordsInto is ComputeWords resolving into a caller-owned buffer:
// dst must hold exactly len(rows[0]) words, and a steady-state call
// allocates nothing (the analog cross-check included). This is the
// zero-alloc hot path the controller's cached executions and the voted
// sensing loop run on.
func (a *Array) ComputeWordsInto(dst []uint64, op Op, rows [][]uint64) error {
	if err := a.ValidateOperands(op, len(rows)); err != nil {
		return err
	}
	width := len(rows[0])
	for i, r := range rows[1:] {
		if len(r) != width {
			return fmt.Errorf("sense: row %d has %d words, row 0 has %d", i+1, len(r), width)
		}
	}
	if len(dst) != width {
		return fmt.Errorf("sense: destination has %d words, rows have %d", len(dst), width)
	}
	out := dst
	switch op {
	case OpRead:
		copy(out, rows[0])
	case OpINV:
		for i, w := range rows[0] {
			out[i] = ^w
		}
	case OpAND:
		for i := range out {
			out[i] = rows[0][i] & rows[1][i]
		}
	case OpXOR:
		for i := range out {
			out[i] = rows[0][i] ^ rows[1][i]
		}
	case OpOR:
		for i := range out {
			w := rows[0][i]
			for _, r := range rows[1:] {
				w |= r[i]
			}
			out[i] = w
		}
	}
	if a.checkEvery > 0 && width > 0 {
		a.analogCheck(op, rows, out)
	}
	return nil
}

// analogCheck re-resolves sampled bit positions through the analog path.
// Panics if the analog and digital results diverge — the cross-model
// consistency assertion this sampling exists to enforce.
func (a *Array) analogCheck(op Op, rows [][]uint64, out []uint64) {
	totalBits := len(out) * 64
	if cap(a.cells) < len(rows) {
		a.cells = make([]bool, len(rows))
	}
	for k := 0; k < a.checkEvery; k++ {
		pos := a.rng.Intn(totalBits)
		wi, bi := pos/64, uint(pos%64)
		cells := a.cells[:len(rows)]
		for r := range rows {
			cells[r] = rows[r][wi]&(1<<bi) != 0
		}
		want := out[wi]&(1<<bi) != 0
		var got bool
		switch op {
		case OpRead:
			got = analog.SenseRead(a.cfg, a.params.Cell, cells[0])
		case OpINV:
			got = analog.SenseINV(a.cfg, a.params.Cell, cells[0])
		case OpAND:
			got = analog.SenseAND(a.cfg, a.params.Cell, cells)
		case OpXOR:
			got = analog.SenseXOR(a.cfg, a.params.Cell, cells[0], cells[1])
		case OpOR:
			got = analog.SenseOR(a.cfg, a.params.Cell, cells)
		}
		if got != want {
			panic(fmt.Sprintf(
				"sense: analog/functional divergence: %s bit %d: analog %v, functional %v",
				op, pos, got, want))
		}
	}
}

// Params returns the technology parameters of the array.
func (a *Array) Params() nvm.Params { return a.params }

// Majority voting across replicated sensing passes. The controller senses
// the same logical operation once per replica set and hands the R word
// vectors here; the vote resolves each bit to the value at least ⌈R/2⌉
// passes agreed on. The implementation is a carry-save population count in
// word-parallel form — three counter planes cover R ≤ 7 — so voting costs
// a handful of boolean word ops per 64 bits, mirroring how cheap the
// digital vote gate is next to the analog sense it protects.
package sense

import (
	"fmt"
	"math/bits"

	"pinatubo/internal/analog"
)

// MajorityWords votes bitwise across the replica outputs and returns the
// majority words plus the number of bit positions (within the first
// `bitCount` bits) where the replicas disagreed — every disagreeing
// position is a sensing error that the vote either fixed or, for a lost
// majority, kept. len(outs) must be a valid replication factor (odd,
// 3..7) and all replicas must have equal width covering bitCount.
func MajorityWords(outs [][]uint64, bitCount int) ([]uint64, int, error) {
	if len(outs) == 0 {
		return nil, 0, fmt.Errorf("sense: majority vote needs an odd replica count in 3..7, got 0")
	}
	maj := make([]uint64, len(outs[0]))
	disagree, err := MajorityWordsInto(maj, outs, bitCount)
	if err != nil {
		return nil, 0, err
	}
	return maj, disagree, nil
}

// MajorityWordsInto is MajorityWords voting into a caller-owned buffer:
// dst must hold exactly the replica width, and a steady-state call
// allocates nothing — the zero-alloc form the voted execution loop uses.
func MajorityWordsInto(dst []uint64, outs [][]uint64, bitCount int) (int, error) {
	r := len(outs)
	if !analog.ValidReplication(r) || r == 0 {
		return 0, fmt.Errorf("sense: majority vote needs an odd replica count in 3..7, got %d", r)
	}
	width := len(outs[0])
	for i, o := range outs[1:] {
		if len(o) != width {
			return 0, fmt.Errorf("sense: replica %d has %d words, replica 0 has %d", i+1, len(o), width)
		}
	}
	if bitCount < 0 || bitCount > width*64 {
		return 0, fmt.Errorf("sense: bit count %d outside replica width %d bits", bitCount, width*64)
	}
	if len(dst) != width {
		return 0, fmt.Errorf("sense: destination has %d words, replicas have %d", len(dst), width)
	}
	maj := dst
	need := r/2 + 1
	disagree := 0
	for i := 0; i < width; i++ {
		// Carry-save counters: c2 c1 c0 hold the per-bit ones count (0..7).
		var c0, c1, c2 uint64
		all := ^uint64(0)
		any := uint64(0)
		for _, o := range outs {
			w := o[i]
			all &= w
			any |= w
			carry := c0 & w
			c0 ^= w
			w = carry
			carry = c1 & w
			c1 ^= w
			c2 |= carry
		}
		var m uint64
		switch need {
		case 2: // r == 3: count >= 2
			m = c2 | c1
		case 3: // r == 5: count >= 3
			m = c2 | (c1 & c0)
		case 4: // r == 7: count >= 4
			m = c2
		}
		maj[i] = m
		// Mask disagreements beyond the operation's bit count: tail bits are
		// slack in the last word, not data.
		d := any &^ all
		if hi := bitCount - i*64; hi < 64 {
			if hi <= 0 {
				d = 0
			} else {
				d &= (uint64(1) << uint(hi)) - 1
			}
		}
		disagree += bits.OnesCount64(d)
	}
	return disagree, nil
}

package sense

import (
	"math/rand"
	"testing"
)

// The sense hot loops must run allocation-free in steady state: the first
// call may grow internal scratch (the analog-check cell buffer), after
// which repeated ops touch no heap. These pins are the regression gate
// for the zero-alloc pass — a new allocation in the loop fails the test.

func randRows(n, w int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, w)
		for j := range rows[i] {
			rows[i][j] = rng.Uint64()
		}
	}
	return rows
}

func TestComputeWordsIntoZeroAllocs(t *testing.T) {
	a := newPCM(t)
	rows := randRows(3, 16, 11)
	dst := make([]uint64, 16)
	// Warm up once so the analog-check scratch reaches steady-state size.
	if err := a.ComputeWordsInto(dst, OpOR, rows); err != nil {
		t.Fatal(err)
	}
	for _, op := range []Op{OpOR, OpAND, OpXOR, OpINV} {
		op := op
		in := rows
		if op == OpAND || op == OpXOR {
			in = rows[:2]
		}
		if op == OpINV {
			in = rows[:1]
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := a.ComputeWordsInto(dst, op, in); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs/op in steady state, want 0", op, allocs)
		}
	}
}

func TestMajorityWordsIntoZeroAllocs(t *testing.T) {
	outs := randRows(3, 16, 13)
	dst := make([]uint64, 16)
	if _, err := MajorityWordsInto(dst, outs, 16*64); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := MajorityWordsInto(dst, outs, 16*64); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("%v allocs/op in steady state, want 0", allocs)
	}
}

// Package fault is a deterministic, seedable fault-injection model for the
// Pinatubo stack. The paper dismisses reliability with "we assume the
// variation is well controlled"; this package models the three ways a real
// chip violates that assumption, so the controller and runtime above it can
// be exercised — and hardened — against them:
//
//   - Sense-bit flips. The probability a sense amplifier misresolves a bit
//     is derived from the analog margin model: a 128-row OR sits just above
//     the offset tolerance and flips often, a 2-row OR has ~20× the margin
//     and essentially never does. This is exactly the PULSAR observation
//     that simultaneous many-row activation is where chips get unreliable,
//     and it is what makes the runtime's depth-reduction retry effective:
//     splitting a failing deep OR into shallower ones widens the margin.
//
//   - Write-endurance wear. PCM cells endure a bounded number of programs;
//     rows written past Config.WearLimit develop permanent stuck-at bits
//     (one more per further WearLimit programs) that corrupt every
//     subsequent write to the row until the allocator retires it.
//
//   - Transient activation faults. Multi-row activation through the LWL
//     latches can fail outright (a latch misses its address slot); the
//     whole operation errors and must be reissued.
//
// Everything is driven by a single seeded PRNG plus per-row hashes, so a
// given seed and operation sequence reproduces the exact same faults —
// tests and the fault-sweep figure rely on that.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"pinatubo/internal/analog"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// Config parameterises the injector. The zero value injects nothing.
type Config struct {
	// Seed makes the injected fault sequence reproducible.
	Seed int64
	// SenseFlipRate is the per-bit misresolve probability of a sensing step
	// operating at the margin floor (margin == offset tolerance). The
	// effective per-bit probability decays exponentially as the operation's
	// analog margin widens beyond the floor, so deep multi-row ORs flip at
	// ~this rate while 2-row ops and plain reads are orders of magnitude
	// safer. 0 disables sense flips.
	SenseFlipRate float64
	// ActivationFailRate is the transient failure probability contributed by
	// each additional simultaneously-opened row: a multi-row activation of n
	// rows fails with probability (n-1)·ActivationFailRate (clamped below 1).
	// 0 disables activation faults.
	ActivationFailRate float64
	// WearLimit is how many programs a row endures before it develops a
	// stuck-at bit; every further WearLimit programs add one more. 0 means
	// unlimited endurance.
	WearLimit int64
	// DriftSeconds derates the sensing margins for data that has drifted
	// since programming. PCM RESET-state drift *widens* OR margins (RHigh
	// grows), so larger values make sense flips rarer; the knob exists so
	// sweeps can show that, not to make faults worse. 0 uses the fresh cell.
	DriftSeconds float64
}

// Enabled reports whether the configuration injects any fault at all.
func (c Config) Enabled() bool {
	return c.SenseFlipRate > 0 || c.ActivationFailRate > 0 || c.WearLimit > 0
}

// Validate rejects out-of-range knobs. New calls it, but callers that
// gate injector construction on Enabled() should call it themselves so a
// nonsense config (negative rate, rate above 1) fails loudly instead of
// silently meaning "disabled".
func (c Config) Validate() error {
	if c.SenseFlipRate < 0 || c.SenseFlipRate > 1 {
		return fmt.Errorf("fault: SenseFlipRate %g outside 0..1", c.SenseFlipRate)
	}
	if c.ActivationFailRate < 0 || c.ActivationFailRate > 1 {
		return fmt.Errorf("fault: ActivationFailRate %g outside 0..1", c.ActivationFailRate)
	}
	if c.WearLimit < 0 {
		return fmt.Errorf("fault: WearLimit %d negative", c.WearLimit)
	}
	if c.DriftSeconds < 0 {
		return fmt.Errorf("fault: DriftSeconds %g negative", c.DriftSeconds)
	}
	return nil
}

// Stats accumulates the injector's lifetime activity — the ground truth a
// resilience layer is measured against.
type Stats struct {
	SenseFlips       int64 // bits flipped on the sensing path
	ActivationFaults int64 // transient multi-row activation failures
	StuckRows        int64 // rows that have developed at least one stuck bit
	StuckBitsForced  int64 // written bits overridden by a stuck cell
	RowWrites        int64 // row programs seen by the wear model
}

// stuckBit is one permanently-failed cell of a worn row.
type stuckBit struct {
	pos int  // bit position within the row
	val bool // the value the cell is stuck at
}

// Injector draws faults for one memory. Not safe for concurrent use, like
// the controller that owns it.
type Injector struct {
	cfg     Config
	scfg    analog.SenseConfig
	cell    nvm.CellParams
	rowBits int
	rng     *rand.Rand
	seq     int64
	margins map[marginKey]float64
	wear    map[uint64]int64
	// wearFrac accumulates partial wear for rows written as one of R
	// replicas of a logical row: each replicated program adds 1/R of a
	// wear event, so replicated rows age R× slower per logical write.
	wearFrac map[uint64]int64
	stuck    map[uint64][]stuckBit
	stats    Stats
}

type marginKey struct {
	op   sense.Op
	rows int
}

// New builds an injector for the technology. rowBits is the rank-logical
// row width (stuck-at positions are drawn inside it).
func New(cfg Config, p nvm.Params, scfg analog.SenseConfig, rowBits int) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if rowBits < 1 {
		return nil, fmt.Errorf("fault: rowBits %d must be positive", rowBits)
	}
	cell := p.Cell
	if cfg.DriftSeconds > 0 {
		drifted, err := analog.DriftedCell(cell, cfg.DriftSeconds)
		if err != nil {
			return nil, err
		}
		cell = drifted
	}
	return &Injector{
		cfg:      cfg,
		scfg:     scfg,
		cell:     cell,
		rowBits:  rowBits,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		margins:  make(map[marginKey]float64),
		wear:     make(map[uint64]int64),
		wearFrac: make(map[uint64]int64),
		stuck:    make(map[uint64][]stuckBit),
	}, nil
}

// Stats returns a snapshot of the accumulated fault activity.
func (in *Injector) Stats() Stats { return in.stats }

// AbsorbStats folds another injector's accumulated activity into this one.
// Batch execution runs sandboxed injectors per shard and merges their
// ground truth back through here.
func (in *Injector) AbsorbStats(s Stats) {
	in.stats.SenseFlips += s.SenseFlips
	in.stats.ActivationFaults += s.ActivationFaults
	in.stats.StuckRows += s.StuckRows
	in.stats.StuckBitsForced += s.StuckBitsForced
	in.stats.RowWrites += s.RowWrites
}

// Reset restores the injector to its New state: wear, stuck-at bits,
// statistics and the substream counter all clear, and the PRNG rewinds to
// the seed. The margin memo survives — it caches pure analog math, so
// keeping it is invisible to behaviour. Pooled shard sandboxes reset
// through here; the batch executor then re-seeds per-row state and the
// substream position explicitly, exactly as it does for a fresh sandbox.
func (in *Injector) Reset() {
	in.rng = rand.New(rand.NewSource(in.cfg.Seed))
	in.seq = 0
	in.stats = Stats{}
	for k := range in.wear {
		delete(in.wear, k)
	}
	for k := range in.wearFrac {
		delete(in.wearFrac, k)
	}
	for k := range in.stuck {
		delete(in.stuck, k)
	}
}

// BeginOp reseeds the transient-fault stream (sense flips, activation
// faults) from a per-operation substream derived from (Seed, sequence
// number). Operations then draw faults independently of each other, which
// is what lets Batch run fault-injected shards concurrently and still
// reproduce the exact flips sequential execution would have drawn.
// Wear and stuck-at state are keyed per row and unaffected.
func (in *Injector) BeginOp() {
	in.seq++
	in.rng = rand.New(rand.NewSource(in.cfg.Seed ^ int64(splitmix64(uint64(in.seq)))))
}

// OpSeq returns the per-operation substream sequence number: the number of
// BeginOp calls seen so far.
func (in *Injector) OpSeq() int64 { return in.seq }

// SetOpSeq positions the substream counter so the next BeginOp starts
// operation seq+1. Batch sharding aligns sandbox injectors to the global
// operation order with this.
func (in *Injector) SetOpSeq(seq int64) { in.seq = seq }

// margin returns the worst-case analog margin of one sensing step of op over
// `rows` simultaneously-open rows, memoised (the analog math is pure).
func (in *Injector) margin(op sense.Op, rows int) float64 {
	key := marginKey{op: op, rows: rows}
	if m, ok := in.margins[key]; ok {
		return m
	}
	var m float64
	switch {
	case rows < 2 || op == sense.OpRead || op == sense.OpINV:
		m = analog.ReadMargin(in.scfg, in.cell)
	case op == sense.OpAND, op == sense.OpXOR:
		// XOR's two micro-steps share the AND reference as the tighter one.
		m = analog.ANDMargin(in.scfg, in.cell, rows)
	default:
		m = analog.ORMargin(in.scfg, in.cell, rows)
	}
	in.margins[key] = m
	return m
}

// FlipProb returns the effective per-bit misresolve probability of op over
// `rows` open rows: SenseFlipRate at the margin floor, decaying
// exponentially (one e-fold per offset tolerance of extra margin) as the
// operation gets easier to sense.
func (in *Injector) FlipProb(op sense.Op, rows int) float64 {
	if in.cfg.SenseFlipRate == 0 {
		return 0
	}
	m := in.margin(op, rows)
	tol := in.scfg.OffsetTol
	if m <= tol {
		return in.cfg.SenseFlipRate
	}
	return in.cfg.SenseFlipRate * math.Exp(-(m-tol)/tol)
}

// FlipSensed corrupts the sensed words of one operation in place, flipping
// each of the first `bits` bits independently with FlipProb. It returns how
// many bits were flipped.
func (in *Injector) FlipSensed(op sense.Op, rows, bits int, words []uint64) int {
	p := in.FlipProb(op, rows)
	if p == 0 || bits == 0 {
		return 0
	}
	n := in.poisson(float64(bits) * p)
	for k := 0; k < n; k++ {
		pos := in.rng.Intn(bits)
		words[pos/64] ^= 1 << uint(pos%64)
	}
	in.stats.SenseFlips += int64(n)
	return n
}

// poisson draws a Poisson variate (Knuth's method; the rates in play keep
// lambda small, and the loop is exact for any lambda).
func (in *Injector) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= in.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// ActivationFault reports whether this multi-row activation of `rows` rows
// transiently fails. Single-row activates never do.
func (in *Injector) ActivationFault(rows int) bool {
	if in.cfg.ActivationFailRate == 0 || rows < 2 {
		return false
	}
	p := float64(rows-1) * in.cfg.ActivationFailRate
	if p > 1 {
		p = 1
	}
	if in.rng.Float64() < p {
		in.stats.ActivationFaults++
		return true
	}
	return false
}

// RecordWrite advances the wear counter of the row identified by its encoded
// address. Crossing a multiple of WearLimit mints one new stuck-at bit whose
// position and polarity derive from a hash of (seed, row, event) — the same
// row always fails the same way, independent of operation order.
func (in *Injector) RecordWrite(key uint64) {
	in.RecordWriteShared(key, 1)
}

// RecordWriteShared records a program of a row that stores one of `share`
// replicas of a logical row: the physical program counts in full toward
// RowWrites, but only 1/share of a wear event accrues, so a row holding one
// of R copies ages R× slower per logical write — the capacity spent on
// replication is simultaneously wear levelling. share == 1 is RecordWrite.
func (in *Injector) RecordWriteShared(key uint64, share int) {
	in.stats.RowWrites++
	if in.cfg.WearLimit == 0 {
		return
	}
	if share < 1 {
		share = 1
	}
	if share > 1 {
		in.wearFrac[key]++
		if in.wearFrac[key] < int64(share) {
			return
		}
		in.wearFrac[key] = 0
	}
	in.wear[key]++
	if in.wear[key]%in.cfg.WearLimit != 0 {
		return
	}
	event := in.wear[key] / in.cfg.WearLimit
	h := splitmix64(uint64(in.cfg.Seed) ^ key*0x9e3779b97f4a7c15 ^ uint64(event))
	b := stuckBit{
		pos: int(h % uint64(in.rowBits)),
		val: h&(1<<63) != 0,
	}
	if len(in.stuck[key]) == 0 {
		in.stats.StuckRows++
	}
	in.stuck[key] = append(in.stuck[key], b)
}

// Wear returns the program count the wear model has seen for the row.
func (in *Injector) Wear(key uint64) int64 { return in.wear[key] }

// Worn reports whether the row has developed stuck-at bits.
func (in *Injector) Worn(key uint64) bool { return len(in.stuck[key]) > 0 }

// StuckPositions returns the bit positions of the row's stuck-at cells —
// diagnostics for tests and sweeps (positions at or past the data row width
// are spare-column cells when the injector covers an ECC stripe).
func (in *Injector) StuckPositions(key uint64) []int {
	out := make([]int, 0, len(in.stuck[key]))
	for _, b := range in.stuck[key] {
		out = append(out, b.pos)
	}
	return out
}

// CorruptStored forces the row's stuck-at bits into freshly-programmed row
// words in place, modelling the cells that no longer accept the write. It
// returns how many bits were actually overridden (a write agreeing with the
// stuck value is unharmed).
func (in *Injector) CorruptStored(key uint64, row []uint64) int {
	return in.CorruptStoredOffset(key, row, 0)
}

// CorruptStoredOffset applies the row's stuck-at bits whose positions fall
// at or beyond offsetBits to `row`, rebased so position offsetBits lands on
// bit 0. The controller uses it for the ECC spare columns: the injector is
// constructed with rowBits covering data plus spare cells, positions below
// the data width corrupt the data row (offset 0) and positions at or above
// it corrupt the packed check words (offset = data row bits) — the spare
// columns wear and stick exactly like the cells they protect.
func (in *Injector) CorruptStoredOffset(key uint64, row []uint64, offsetBits int) int {
	forced := 0
	for _, b := range in.stuck[key] {
		if b.pos < offsetBits {
			continue
		}
		pos := b.pos - offsetBits
		wi, mask := pos/64, uint64(1)<<uint(pos%64)
		if wi >= len(row) {
			continue
		}
		was := row[wi]&mask != 0
		if was == b.val {
			continue
		}
		if b.val {
			row[wi] |= mask
		} else {
			row[wi] &^= mask
		}
		forced++
	}
	in.stats.StuckBitsForced += int64(forced)
	return forced
}

// StuckBit is the exported form of one permanently-failed cell: its bit
// position within the row and the value it is stuck at.
type StuckBit struct {
	Pos int
	Val bool
}

// RowState is the complete per-row state of the wear model for one row:
// the program count, the fractional (replica-shared) wear accumulator, and
// the minted stuck-at bits. Batch execution exports it from the live
// injector to seed shard sandboxes, and imports the sandbox state back on
// merge — the split/merge is lossless because faults are keyed per row.
type RowState struct {
	Wear     int64
	WearFrac int64
	Stuck    []StuckBit
}

// RowState snapshots the wear state of one row. The second return is false
// when the injector holds no state for the row (a fresh row).
func (in *Injector) RowState(key uint64) (RowState, bool) {
	w, okW := in.wear[key]
	f, okF := in.wearFrac[key]
	s := in.stuck[key]
	if !okW && !okF && len(s) == 0 {
		return RowState{}, false
	}
	st := RowState{Wear: w, WearFrac: f, Stuck: make([]StuckBit, len(s))}
	for i, b := range s {
		st.Stuck[i] = StuckBit{Pos: b.pos, Val: b.val}
	}
	return st, true
}

// SetRowState installs per-row wear state, replacing whatever the injector
// held for the row. It does not touch the activity statistics — imported
// stuck bits are history, not new faults.
func (in *Injector) SetRowState(key uint64, st RowState) {
	if st.Wear == 0 {
		delete(in.wear, key)
	} else {
		in.wear[key] = st.Wear
	}
	if st.WearFrac == 0 {
		delete(in.wearFrac, key)
	} else {
		in.wearFrac[key] = st.WearFrac
	}
	if len(st.Stuck) == 0 {
		delete(in.stuck, key)
		return
	}
	bits := make([]stuckBit, len(st.Stuck))
	for i, b := range st.Stuck {
		bits[i] = stuckBit{pos: b.Pos, val: b.Val}
	}
	in.stuck[key] = bits
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

package fault

import (
	"testing"

	"pinatubo/internal/analog"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

func newPCM(t *testing.T, cfg Config) *Injector {
	t.Helper()
	in, err := New(cfg, nvm.Get(nvm.PCM), analog.DefaultSenseConfig(), 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestEnabled(t *testing.T) {
	cases := []struct {
		cfg  Config
		want bool
	}{
		{Config{}, false},
		{Config{Seed: 7}, false},
		{Config{DriftSeconds: 100}, false},
		{Config{SenseFlipRate: 1e-6}, true},
		{Config{ActivationFailRate: 1e-4}, true},
		{Config{WearLimit: 100}, true},
	}
	for _, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("Enabled(%+v) = %v, want %v", c.cfg, got, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{SenseFlipRate: -1},
		{SenseFlipRate: 1.5},
		{ActivationFailRate: -0.1},
		{ActivationFailRate: 2},
		{WearLimit: -1},
		{DriftSeconds: -1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, nvm.Get(nvm.PCM), analog.DefaultSenseConfig(), 64); err == nil {
			t.Errorf("New(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestFlipProbOrderedByMargin(t *testing.T) {
	// The whole point of the margin-derived model: deep ORs flip much more
	// than shallow ones, which flip much more than plain reads. The ladder
	// the runtime climbs down must be monotone.
	in := newPCM(t, Config{SenseFlipRate: 1e-3})
	p128 := in.FlipProb(sense.OpOR, 128)
	p64 := in.FlipProb(sense.OpOR, 64)
	p2 := in.FlipProb(sense.OpOR, 2)
	pRead := in.FlipProb(sense.OpRead, 1)
	if !(p128 > p64 && p64 > p2 && p2 >= pRead) {
		t.Fatalf("flip probabilities not ordered by margin: OR128=%g OR64=%g OR2=%g read=%g",
			p128, p64, p2, pRead)
	}
	// Halving the depth of a failing 128-row OR must buy real safety.
	if p128 < 10*p64 {
		t.Errorf("depth reduction 128->64 should cut the flip rate by >=10x, got %g -> %g", p128, p64)
	}
	if p128 > in.cfg.SenseFlipRate {
		t.Errorf("flip probability %g exceeds the configured rate %g", p128, in.cfg.SenseFlipRate)
	}
}

func TestFlipSensedDeterministic(t *testing.T) {
	run := func() (int, []uint64) {
		in := newPCM(t, Config{Seed: 42, SenseFlipRate: 0.01})
		words := make([]uint64, 1<<10)
		n := 0
		for i := 0; i < 20; i++ {
			n += in.FlipSensed(sense.OpOR, 128, 1<<16, words)
		}
		return n, words
	}
	n1, w1 := run()
	n2, w2 := run()
	if n1 != n2 {
		t.Fatalf("same seed, different flip counts: %d vs %d", n1, n2)
	}
	if n1 == 0 {
		t.Fatal("0.01 rate over 20 deep ORs of 64 Kbit flipped nothing")
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("same seed, different flip positions at word %d", i)
		}
	}
}

func TestFlipSensedZeroRate(t *testing.T) {
	in := newPCM(t, Config{WearLimit: 10}) // enabled, but no sense flips
	words := make([]uint64, 16)
	if n := in.FlipSensed(sense.OpOR, 128, 1024, words); n != 0 {
		t.Fatalf("flipped %d bits with SenseFlipRate=0", n)
	}
	for _, w := range words {
		if w != 0 {
			t.Fatal("words mutated with SenseFlipRate=0")
		}
	}
}

func TestActivationFault(t *testing.T) {
	in := newPCM(t, Config{ActivationFailRate: 0.01})
	if in.ActivationFault(1) {
		t.Fatal("single-row activation faulted")
	}
	faults := 0
	for i := 0; i < 1000; i++ {
		if in.ActivationFault(128) {
			faults++
		}
	}
	// p = 127*0.01 > 1 clamps to certainty.
	if faults != 1000 {
		t.Fatalf("128-row activation at clamped p=1 faulted %d/1000 times", faults)
	}
	if got := in.Stats().ActivationFaults; got != 1000 {
		t.Fatalf("stats recorded %d activation faults, want 1000", got)
	}
}

func TestWearMintsStuckBits(t *testing.T) {
	in := newPCM(t, Config{Seed: 1, WearLimit: 10})
	const key = 12345
	for i := 0; i < 9; i++ {
		in.RecordWrite(key)
	}
	if in.Worn(key) {
		t.Fatal("row worn before reaching the limit")
	}
	in.RecordWrite(key)
	if !in.Worn(key) {
		t.Fatal("row not worn after WearLimit programs")
	}
	if got := in.Wear(key); got != 10 {
		t.Fatalf("wear counter %d, want 10", got)
	}
	// Another WearLimit programs mint a second stuck bit.
	for i := 0; i < 10; i++ {
		in.RecordWrite(key)
	}
	if got := len(in.stuck[key]); got != 2 {
		t.Fatalf("%d stuck bits after 2x WearLimit programs, want 2", got)
	}
	st := in.Stats()
	if st.StuckRows != 1 {
		t.Fatalf("StuckRows = %d, want 1", st.StuckRows)
	}
	if st.RowWrites != 20 {
		t.Fatalf("RowWrites = %d, want 20", st.RowWrites)
	}
}

func TestStuckBitsDeterministicPerRow(t *testing.T) {
	// The same (seed, row, event) must always fail the same way, regardless
	// of what else happened in between — tests and sweeps rely on it.
	mint := func(extraTraffic bool) []stuckBit {
		in := newPCM(t, Config{Seed: 9, WearLimit: 3})
		if extraTraffic {
			for i := 0; i < 50; i++ {
				in.RecordWrite(777)
				in.ActivationFault(64)
			}
		}
		for i := 0; i < 3; i++ {
			in.RecordWrite(42)
		}
		return in.stuck[42]
	}
	a, b := mint(false), mint(true)
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Fatalf("stuck bits depend on unrelated traffic: %+v vs %+v", a, b)
	}
}

func TestCorruptStored(t *testing.T) {
	in := newPCM(t, Config{Seed: 3, WearLimit: 1})
	const key = 7
	in.RecordWrite(key)
	b := in.stuck[key][0]
	row := make([]uint64, 1<<13)
	// Program the complement of the stuck value: the cell must override it.
	if !b.val {
		row[b.pos/64] |= 1 << uint(b.pos%64)
	}
	if forced := in.CorruptStored(key, row); forced != 1 {
		t.Fatalf("forced %d bits, want 1", forced)
	}
	got := row[b.pos/64]&(1<<uint(b.pos%64)) != 0
	if got != b.val {
		t.Fatal("stored bit does not match the stuck value")
	}
	// Writing the stuck value itself is unharmed.
	if forced := in.CorruptStored(key, row); forced != 0 {
		t.Fatalf("agreeing write forced %d bits, want 0", forced)
	}
	if st := in.Stats(); st.StuckBitsForced != 1 {
		t.Fatalf("StuckBitsForced = %d, want 1", st.StuckBitsForced)
	}
}

func TestCorruptStoredOffset(t *testing.T) {
	// Mint stuck bits until one lands in the "spare" region past dataBits and
	// one in the data region, then check each corrupts only its own slice.
	in := newPCM(t, Config{Seed: 5, WearLimit: 1})
	const key = 11
	const dataBits = 1 << 18 // injector rowBits 1<<19 leaves a huge spare tail
	var spare, data *stuckBit
	for i := 0; i < 4096 && (spare == nil || data == nil); i++ {
		in.RecordWrite(key)
		b := &in.stuck[key][len(in.stuck[key])-1]
		if b.pos >= dataBits && spare == nil {
			spare = b
		}
		if b.pos < dataBits && data == nil {
			data = b
		}
	}
	if spare == nil || data == nil {
		t.Fatal("could not mint stuck bits on both sides of the data boundary")
	}

	dataRow := make([]uint64, dataBits/64)
	spareRow := make([]uint64, (in.rowBits-dataBits)/64)
	// Program complements so every stuck bit in range must force.
	flip := func(row []uint64, pos int, val bool) {
		if !val {
			row[pos/64] |= 1 << uint(pos%64)
		}
	}
	flip(dataRow, data.pos, data.val)
	flip(spareRow, spare.pos-dataBits, spare.val)

	if forced := in.CorruptStoredOffset(key, spareRow, dataBits); forced < 1 {
		t.Fatalf("spare region forced %d bits, want >= 1", forced)
	}
	got := spareRow[(spare.pos-dataBits)/64]&(1<<uint((spare.pos-dataBits)%64)) != 0
	if got != spare.val {
		t.Fatal("spare bit does not match the stuck value")
	}
	// A data-region row sized dataBits must be untouched by spare positions:
	// CorruptStored skips positions past len(row).
	if forced := in.CorruptStored(key, dataRow); forced < 1 {
		t.Fatalf("data region forced %d bits, want >= 1", forced)
	}
	got = dataRow[data.pos/64]&(1<<uint(data.pos%64)) != 0
	if got != data.val {
		t.Fatal("data bit does not match the stuck value")
	}
}

func TestDriftWidensMarginsReducesFlips(t *testing.T) {
	fresh := newPCM(t, Config{SenseFlipRate: 1e-3})
	aged := newPCM(t, Config{SenseFlipRate: 1e-3, DriftSeconds: 1e6})
	if pf, pa := fresh.FlipProb(sense.OpOR, 128), aged.FlipProb(sense.OpOR, 128); pa >= pf {
		t.Fatalf("drift should widen the 128-row margin and cut flips: fresh %g, aged %g", pf, pa)
	}
}

package pimrt

// This file is the proactive rung of the resilience ladder: replication +
// majority-vote sensing (the PULSAR trade — capacity for reliability).
// When the Replicas hook reports that every operand of an intra-subarray
// request has R-1 coherent copies, the request executes as one
// majority-voted activation: R sequential multi-row groups sensed at the
// native depth, voted bitwise before write-back. The reactive rungs
// (retry, depth-split, inter-digital, host) only engage when the vote is
// not unanimous *and* verification still fails — at realistic fault rates
// the binomial vote tail turns nearly every would-be degradation into a
// clean first-try result.

import (
	"pinatubo/internal/memarch"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

// votedSets assembles the replica operand sets for a request, or returns
// nil when voting does not apply: no Replicas hook, an operand without
// replicas, mismatched replica counts, or a placement the analog vote
// cannot serve (all copies of all operands must share one subarray).
// sets[0] is srcs itself; sets[k] holds the k-th copy of every operand.
func (s *Scheduler) votedSets(srcs []memarch.RowAddr) [][]memarch.RowAddr {
	if s.Replicas == nil || len(srcs) == 0 {
		return nil
	}
	reps := make([][]memarch.RowAddr, len(srcs))
	r := 0
	for i, a := range srcs {
		rep := s.Replicas(a)
		if len(rep) == 0 {
			return nil
		}
		if i == 0 {
			r = len(rep)
		} else if len(rep) != r {
			return nil
		}
		reps[i] = rep
	}
	sets := make([][]memarch.RowAddr, r+1)
	sets[0] = srcs
	all := append([]memarch.RowAddr(nil), srcs...)
	for k := 0; k < r; k++ {
		set := make([]memarch.RowAddr, len(srcs))
		for i := range srcs {
			set[i] = reps[i][k]
		}
		sets[k+1] = set
		all = append(all, set...)
	}
	if !memarch.SameSubarray(all...) {
		return nil
	}
	return sets
}

// nativeExec executes one request on the native analog path, majority
// voted when every operand is replicated, plain otherwise. The vote
// counters accrue only on completed requests — a transient activation
// fault aborts before anything was sensed to vote on.
func (s *Scheduler) nativeExec(op sense.Op, srcs []memarch.RowAddr, bits int, dst *memarch.RowAddr) (*pim.Result, error) {
	if sets := s.votedSets(srcs); sets != nil {
		r, err := s.Ctl.ExecuteVoted(op, sets, bits, dst)
		if err != nil {
			return nil, err
		}
		s.stats.Votes++
		s.stats.BitsOutvoted += r.Outvoted
		return r, nil
	}
	return s.Ctl.Execute(op, srcs, bits, dst)
}

// syncReplicas refreshes the replica copies of a just-verified target row
// with plain single-row copy requests (activate the primary, sense at the
// read margin, write back into the replica's row), so the next voted
// activation sees R coherent copies. Voted execution writes only the
// primary destination; this is where the replicas catch up — priced as
// the explicit requests they are, recorded into the operation's program.
func (s *Scheduler) syncReplicas(target memarch.RowAddr, bits int, res *ScheduleResult) error {
	if s.Replicas == nil {
		return nil
	}
	for _, rep := range s.Replicas(target) {
		rep := rep
		r, err := s.Ctl.Execute(sense.OpRead, []memarch.RowAddr{target}, bits, &rep)
		if err != nil {
			return err
		}
		res.Program.Emit(r.Instr())
	}
	return nil
}

package pimrt

import (
	"math"
	"math/rand"
	"testing"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/ddr"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

// traceSeconds sums the scheduling footprint of a trace: command segments
// priced exactly as the controller priced them, opaque segments at their
// recorded latency.
func traceSeconds(trace []TraceSegment, t nvm.Timing, bus ddr.BusParams) float64 {
	total := 0.0
	for _, seg := range trace {
		if seg.Cmds != nil {
			total += ddr.Duration(seg.Cmds, t, bus)
			continue
		}
		total += seg.Seconds
	}
	return total
}

// With resilience off the trace is exactly the plain controller command
// sequence — the zero-fault reproduction guarantee the planner relies on.
func TestTracePlainPathMatchesController(t *testing.T) {
	geo := memarch.Default()
	mem, err := memarch.NewMemory(geo, nvm.Get(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := &Scheduler{
		Ctl:     ctl,
		Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return ScratchRow(geo, sub) },
	}
	rows := []memarch.RowAddr{{Subarray: 0, Row: 0}, {Subarray: 0, Row: 1}}
	dst := memarch.RowAddr{Subarray: 0, Row: 5}
	res, err := s.OR(rows, geo.RowBits(), dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 1 {
		t.Fatalf("plain OR trace has %d segments, want 1", len(res.Trace))
	}
	seg := res.Trace[0]
	if seg.Cmds == nil || seg.Seconds != 0 {
		t.Fatalf("plain segment should carry commands only: %+v", seg)
	}
	// The segment is the very command sequence a bare controller emits.
	ref, err := ctl.Execute(sense.OpOR, rows, geo.RowBits(), &dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(seg.Cmds) != len(ref.Commands) {
		t.Fatalf("trace %d commands, controller %d", len(seg.Cmds), len(ref.Commands))
	}
	for i := range seg.Cmds {
		if seg.Cmds[i] != ref.Commands[i] {
			t.Fatalf("command %d differs: %+v vs %+v", i, seg.Cmds[i], ref.Commands[i])
		}
	}
	tech := nvm.Get(nvm.PCM)
	if got := traceSeconds(res.Trace, tech.Timing, ctl.Bus()); got != res.Cost.Seconds {
		t.Errorf("trace seconds %g != cost %g", got, res.Cost.Seconds)
	}
}

// Under heavy faults the trace grows with the ladder — retries, verify
// passes and host traffic all leave footprints — and its total duration
// stays exactly the accumulated cost.
func TestTraceAccountsForResilienceExpansions(t *testing.T) {
	geo := memarch.Default()
	s, ctl := newResilientSched(t, geo, fault.Config{Seed: 17, SenseFlipRate: 1})
	rng := rand.New(rand.NewSource(4))
	const bits = 4096
	w := bitvec.WordsFor(bits)
	rows := make([]memarch.RowAddr, 128)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 3, Row: i}
	}
	fillRows(t, ctl, rows, w, rng)
	dst := memarch.RowAddr{Subarray: 3, Row: 900}
	res, err := s.OR(rows, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	// The expanded trace must be strictly longer than the one plain
	// request the zero-fault path would have issued, and must include
	// opaque verification segments.
	if len(res.Trace) < 3 {
		t.Fatalf("heavy-fault trace has only %d segments", len(res.Trace))
	}
	opaque := 0
	for _, seg := range res.Trace {
		if seg.Cmds == nil {
			if seg.Seconds <= 0 {
				t.Fatalf("opaque segment without latency: %+v", seg)
			}
			opaque++
		}
	}
	if opaque == 0 {
		t.Fatal("no verification segments in a verified schedule")
	}
	tech := nvm.Get(nvm.PCM)
	got := traceSeconds(res.Trace, tech.Timing, ctl.Bus())
	if math.Abs(got-res.Cost.Seconds) > res.Cost.Seconds*1e-12 {
		t.Errorf("trace seconds %g != cost %g", got, res.Cost.Seconds)
	}
}

// Package pimrt is Pinatubo's system-software stack (the paper's Fig. 4):
// the PIM-aware allocator behind pim_malloc (bit-vectors must land in
// distinct rows, groups of vectors that will be operated on together should
// share a subarray), the mapper that turns logical bit-vector IDs into row
// addresses, and the scheduler that lowers a logical multi-operand request
// into the per-subarray intra ops plus inter-subarray/bank combines the
// hardware actually runs.
package pimrt

import (
	"errors"
	"fmt"
	"sort"

	"pinatubo/internal/cmdstream"
	"pinatubo/internal/ddr"
	"pinatubo/internal/memarch"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// ErrOutOfMemory is returned when no rows are left.
var ErrOutOfMemory = errors.New("pimrt: out of memory rows")

// Allocator hands out rank-logical rows with subarray affinity. It is the
// model of the modified C run-time allocator plus the OS mapping policy:
// allocations walk subarrays sequentially so that consecutively allocated
// bit-vectors (the common "operate on these together" case) share one.
type Allocator struct {
	geo     memarch.Geometry
	free    map[uint64]bool // explicit frees, reused before fresh rows
	retired map[uint64]bool // worn-out rows, permanently out of circulation
	next    uint64          // next never-allocated row index
	max     uint64
	// tail is how many rows at the end of every subarray are reserved and
	// never handed out: the scheduler's scratch row plus whatever the
	// technology backend claims as compute rows (Caps().ComputeRows).
	tail int
}

// NewAllocator builds an allocator over the whole memory. When
// reserveScratch is true, the last row of every subarray is never handed
// out — the driver library keeps it as the scheduler's partial-result row
// (ScratchRow returns it).
func NewAllocator(geo memarch.Geometry, reserveScratch bool) (*Allocator, error) {
	tail := 0
	if reserveScratch {
		tail = 1
	}
	return NewAllocatorTail(geo, tail)
}

// NewAllocatorTail builds an allocator that keeps the last tail rows of
// every subarray out of circulation. The System sizes the tail as one
// scratch row plus the backend's reserved compute rows, so a backend that
// claims designated rows (the DRAM TRA group) can never collide with data.
func NewAllocatorTail(geo memarch.Geometry, tail int) (*Allocator, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if tail < 0 || tail >= geo.RowsPerSubarray {
		return nil, fmt.Errorf("pimrt: reserved tail of %d rows outside 0..%d",
			tail, geo.RowsPerSubarray-1)
	}
	return &Allocator{
		geo:     geo,
		free:    make(map[uint64]bool),
		retired: make(map[uint64]bool),
		max:     uint64(geo.TotalRows()),
		tail:    tail,
	}, nil
}

// UsableRowsPerSubarray reports how many rows of each subarray the
// allocator may hand out.
func (a *Allocator) UsableRowsPerSubarray() int { return a.geo.RowsPerSubarray - a.tail }

// ScratchRow returns the reserved scratch row of the subarray containing a.
func ScratchRow(geo memarch.Geometry, a memarch.RowAddr) memarch.RowAddr {
	a.Row = geo.RowsPerSubarray - 1
	return a
}

// skipReserved advances the frontier past the reserved tail rows.
func (a *Allocator) skipReserved() {
	if a.tail == 0 {
		return
	}
	per := uint64(a.geo.RowsPerSubarray)
	for a.next < a.max && a.next%per >= per-uint64(a.tail) {
		a.next++
	}
}

// AllocRows returns n rows. Rows come from the free list first, then from
// the sequential frontier (which fills subarray after subarray, giving
// adjacent allocations intra-subarray placement).
func (a *Allocator) AllocRows(n int) ([]memarch.RowAddr, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pimrt: alloc of %d rows", n)
	}
	out := make([]memarch.RowAddr, 0, n)
	// Reuse freed rows in ascending order for determinism.
	if len(a.free) > 0 {
		keys := make([]uint64, 0, len(a.free))
		for k := range a.free {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			if len(out) == n {
				break
			}
			delete(a.free, k)
			out = append(out, a.geo.Decode(k))
		}
	}
	for len(out) < n {
		a.skipReserved()
		if a.next >= a.max {
			return nil, fmt.Errorf("pimrt: allocating %d rows (%d still needed): %w",
				n, n-len(out), ErrOutOfMemory)
		}
		out = append(out, a.geo.Decode(a.next))
		a.next++
	}
	return out, nil
}

// AllocGroupRows returns n rows guaranteed to share one subarray (needed
// when the caller wants one-step multi-row ops over the whole group). It
// fails if n exceeds the subarray's row count.
func (a *Allocator) AllocGroupRows(n int) ([]memarch.RowAddr, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pimrt: alloc of %d rows", n)
	}
	avail := a.UsableRowsPerSubarray()
	if n > avail {
		return nil, fmt.Errorf("pimrt: group of %d rows exceeds subarray (%d usable rows)",
			n, avail)
	}
	// Advance the frontier to a subarray boundary if the group would
	// straddle one (counting the reserved tail rows as unusable).
	per := uint64(a.geo.RowsPerSubarray)
	used := a.next % per
	if used+uint64(n) > uint64(avail) {
		a.next += per - used
	}
	if a.next+uint64(n) > a.max {
		return nil, fmt.Errorf("pimrt: allocating a %d-row group: %w", n, ErrOutOfMemory)
	}
	out := make([]memarch.RowAddr, n)
	for i := range out {
		out[i] = a.geo.Decode(a.next)
		a.next++
	}
	return out, nil
}

// Free returns rows to the allocator. Retired rows stay out of circulation.
func (a *Allocator) Free(rows []memarch.RowAddr) {
	for _, r := range rows {
		key := a.geo.Encode(r)
		if a.retired[key] {
			continue
		}
		a.free[key] = true
	}
}

// Retire permanently removes a row from circulation (wear-out: its cells no
// longer store what the write drivers deliver). A retired row is never
// handed out again, even if Free is later called on it.
func (a *Allocator) Retire(r memarch.RowAddr) {
	key := a.geo.Encode(r)
	a.retired[key] = true
	delete(a.free, key)
}

// Reset restores the allocator to its NewAllocator state: the frontier
// rewinds and free/retired sets empty, so a pooled shard sandbox hands out
// exactly the row sequence a fresh allocator would.
func (a *Allocator) Reset() {
	for k := range a.free {
		delete(a.free, k)
	}
	for k := range a.retired {
		delete(a.retired, k)
	}
	a.next = 0
}

// AllocatedRows reports how many rows are currently live (retired rows
// still count — their capacity is lost, not reclaimed).
func (a *Allocator) AllocatedRows() int { return int(a.next) - len(a.free) }

// RetiredRows reports how many rows have been retired.
func (a *Allocator) RetiredRows() int { return len(a.retired) }

// --- scheduling ---

// subarrayKey identifies one subarray.
type subarrayKey struct{ ch, rk, ba, sa int }

func keyOf(a memarch.RowAddr) subarrayKey {
	return subarrayKey{a.Channel, a.Rank, a.Bank, a.Subarray}
}

// GroupBySubarray partitions operand rows by their subarray, preserving
// first-appearance order of the groups. Grouping scans linearly instead
// of hashing: operand sets are bounded by the open-row cap and group
// counts are tiny, so the scan beats a map and allocates no index.
func GroupBySubarray(rows []memarch.RowAddr) [][]memarch.RowAddr {
	return appendGroups(nil, rows)
}

// appendGroups is GroupBySubarray onto a caller-owned groups buffer
// (emptied group slices are reused; see Scheduler.groupBySubarray).
func appendGroups(groups [][]memarch.RowAddr, rows []memarch.RowAddr) [][]memarch.RowAddr {
	for _, r := range rows {
		k := keyOf(r)
		found := -1
		for i := range groups {
			if keyOf(groups[i][0]) == k {
				found = i
				break
			}
		}
		if found < 0 {
			if len(groups) < cap(groups) {
				groups = groups[:len(groups)+1]
				groups[len(groups)-1] = groups[len(groups)-1][:0]
			} else {
				groups = append(groups, nil)
			}
			found = len(groups) - 1
		}
		groups[found] = append(groups[found], r)
	}
	return groups
}

// PlacementOf returns the workload placement of an operand set: intra when
// one subarray holds everything, inter-sub within a bank, inter-bank within
// a rank. Cross-rank sets return an error — the driver must split them.
func PlacementOf(rows []memarch.RowAddr) (workload.Placement, error) {
	switch {
	case memarch.SameSubarray(rows...):
		return workload.PlaceIntra, nil
	case memarch.SameBank(rows...):
		return workload.PlaceInterSub, nil
	case memarch.SameRank(rows...):
		return workload.PlaceInterBank, nil
	default:
		return 0, fmt.Errorf("pimrt: placing %d operand rows: %w", len(rows), pim.ErrCrossRank)
	}
}

// SpecForOR builds the workload OpSpec for a logical OR over operand rows,
// with the scheduler's subarray grouping attached. bits is the vector
// length.
func SpecForOR(rows []memarch.RowAddr, bits int) (workload.OpSpec, error) {
	if len(rows) < 2 {
		return workload.OpSpec{}, fmt.Errorf("pimrt: OR over %d rows", len(rows))
	}
	placement, err := PlacementOf(rows)
	if err != nil {
		return workload.OpSpec{}, err
	}
	spec := workload.OpSpec{
		Op:        sense.OpOR,
		Operands:  len(rows),
		Bits:      bits,
		Placement: placement,
	}
	if groups := GroupBySubarray(rows); len(groups) > 1 {
		spec.Groups = make([]int, len(groups))
		for i, g := range groups {
			spec.Groups[i] = len(g)
		}
	}
	return spec, nil
}

// Schedule lowers a logical OR over arbitrarily many operand rows into the
// hardware request sequence: per-subarray multi-row ORs at the controller's
// depth (with chaining through scratch rows), then an inter combine, with
// the final result written to dst. It executes the ops on the controller
// and returns the accumulated cost plus the number of hardware requests.
//
// scratch must provide one free row in every subarray touched; the driver
// library reserves these at init (the paper's run-time "schedule opt").
type Scheduler struct {
	Ctl *pim.Controller
	// Scratch returns a scratch row in the given subarray for partial
	// results.
	Scratch func(sub memarch.RowAddr) memarch.RowAddr
	// Res enables the verify-and-retry resilience ladder (resilience.go);
	// nil schedules plainly, trusting the hardware.
	Res *Resilience
	// Remap, when set, supplies a replacement row for a destination whose
	// cells are damaged (the old row should be retired by the provider).
	Remap func(old memarch.RowAddr) (memarch.RowAddr, error)
	// Release, when set, takes back rows the scheduler borrowed through
	// Remap for internal partials it no longer needs.
	Release func(rows []memarch.RowAddr)
	// Replicas, when set, supplies the replica rows holding extra copies of
	// a logical row (nil/empty for unreplicated rows). When every operand
	// of an intra-subarray request is replicated, the request executes as a
	// majority-voted activation over all copies — the proactive rung of the
	// resilience ladder (resilience.go).
	Replicas func(a memarch.RowAddr) []memarch.RowAddr

	stats FaultStats

	// groups, srcs and partials are scheduling scratch, reused across
	// operations so the steady-state OR path allocates nothing for
	// operand grouping and request assembly. A Scheduler is owned by one
	// System and never called reentrantly, so plain fields suffice.
	groups   [][]memarch.RowAddr
	srcs     []memarch.RowAddr
	partials []memarch.RowAddr
}

// groupBySubarray is GroupBySubarray through the scheduler's reusable
// grouping scratch.
func (s *Scheduler) groupBySubarray(rows []memarch.RowAddr) [][]memarch.RowAddr {
	s.groups = appendGroups(s.groups[:0], rows)
	return s.groups
}

// TraceSegment is one channel-schedulable piece of a scheduled operation's
// command trace. Controller-executed requests carry their full DDR command
// sequence; verification and ECC passes, which the controller prices as
// lump-sum latencies without emitting commands, appear as opaque segments
// that occupy the destination's bank for Seconds.
type TraceSegment struct {
	// Cmds is the DDR command sequence of a controller-executed request
	// (nil for opaque verification/ECC segments).
	Cmds []ddr.Cmd
	// Seconds is the bank-busy time of an opaque segment (0 when Cmds is
	// set — the commands carry their own timing).
	Seconds float64
	// Addr locates the bank an opaque segment occupies.
	Addr memarch.RowAddr
}

// ScheduleResult summarises one scheduled logical operation.
type ScheduleResult struct {
	Requests int
	Cost     workload.Cost
	Words    []uint64

	// Program is the operation's lowered cmdstream program: everything it
	// put on the channel in execution order, including resilience
	// expansions (retries, depth splits, ECC reprograms and verification
	// passes). Requests, Cost and Trace are all derived from it by
	// finalize — the program is the single source of truth.
	Program cmdstream.Program

	// Trace is the ordered command trace derived from Program. Replaying
	// it through internal/chansim reproduces the operation's scheduling
	// footprint; with resilience off it is exactly the plain controller
	// command sequence.
	Trace []TraceSegment

	// Resilience outcome — all zero when the ladder is off or never needed.
	Retries       int    // hardware re-executions
	Degraded      string // worst degradation rung taken ("" = native path)
	BitsCorrected int64  // wrong bits intercepted by verification
	Votes         int    // majority-voted requests executed
	BitsOutvoted  int64  // replica-disagreeing bits the vote overrode
	// FinalDst is where the result actually lives; it differs from the
	// requested destination only when that row was retired mid-operation.
	FinalDst memarch.RowAddr
}

// finalize derives the result's accounting — request count, accumulated
// Cost, TraceSegments — from the lowered program. This is the only place
// in the runtime that computes them. The cost fold replays the program's
// annotations in emission order, so it is bit-identical to accumulating
// during execution; zero-second verify instructions (the linear ECC fast
// path) contribute energy but no trace segment.
func (res *ScheduleResult) finalize() {
	res.Requests = res.Program.Requests()
	res.Cost = res.Program.Cost()
	res.Votes, res.BitsOutvoted = res.Program.Votes()
	res.Trace = nil
	for _, in := range res.Program.Instrs {
		switch in.Kind {
		case cmdstream.KindRequest, cmdstream.KindVoted:
			res.Trace = append(res.Trace, TraceSegment{Cmds: in.Cmds})
		case cmdstream.KindVerify:
			if in.Seconds > 0 {
				res.Trace = append(res.Trace, TraceSegment{Seconds: in.Seconds, Addr: in.Addr})
			}
		default:
			// Unknown kinds carry no schedulable footprint.
		}
	}
}

// OR executes the logical OR of the operand rows into dst.
func (s *Scheduler) OR(rows []memarch.RowAddr, bits int, dst memarch.RowAddr) (*ScheduleResult, error) {
	if len(rows) == 0 {
		return nil, errors.New("pimrt: OR of no rows")
	}
	res := &ScheduleResult{FinalDst: dst}
	tgt := dst
	if len(rows) == 1 {
		// Degenerate copy: read + write through the controller.
		if _, err := s.request(sense.OpRead, rows, bits, &tgt, nil, res); err != nil {
			return nil, err
		}
		res.FinalDst = tgt
		res.finalize()
		return res, nil
	}

	depth := s.Ctl.MaxORRows()
	groups := s.groupBySubarray(rows)
	partials := s.partials[:0]
	var borrowed []memarch.RowAddr
	for _, g := range groups {
		if len(g) == 1 {
			partials = append(partials, g[0])
			continue
		}
		// Collapse the group inside its subarray, chaining at the depth.
		target := s.Scratch(g[0])
		if len(groups) == 1 {
			target = dst
		}
		orig := target
		if err := s.chainedOR(g, bits, &target, depth, res); err != nil {
			return nil, err
		}
		if len(groups) == 1 {
			res.FinalDst = target
			res.finalize()
			s.partials = partials[:0]
			return res, nil
		}
		if target != orig {
			// The scratch row wore out mid-chain and the partial now lives
			// in a row on loan from the allocator; return it once combined.
			borrowed = append(borrowed, target)
		}
		partials = append(partials, target)
	}
	// Combine partials across subarrays/banks. The partials necessarily
	// live in distinct subarrays, so this is one inter request (chunked at
	// the request cap when enormous).
	if err := s.chainedOR(partials, bits, &tgt, pim.InterORLimit, res); err != nil {
		return nil, err
	}
	s.partials = partials[:0]
	res.FinalDst = tgt
	if s.Release != nil && len(borrowed) > 0 {
		s.Release(borrowed)
	}
	res.finalize()
	return res, nil
}

// chainedOR folds rows into *target with requests of at most depth
// operands. Every link goes through request, so with resilience enabled
// each one is verified before the next consumes the accumulator; the
// verified words double as the restore checkpoint for the following link.
func (s *Scheduler) chainedOR(rows []memarch.RowAddr, bits int, target *memarch.RowAddr, depth int, res *ScheduleResult) error {
	take := len(rows)
	if take > depth {
		take = depth
	}
	srcs := append(s.srcs[:0], rows[:take]...)
	words, err := s.request(sense.OpOR, srcs, bits, target, nil, res)
	if err != nil {
		return err
	}
	done := take
	for done < len(rows) {
		take = len(rows) - done
		if take > depth-1 {
			take = depth - 1
		}
		srcs = srcs[:0]
		srcs = append(srcs, *target)
		srcs = append(srcs, rows[done:done+take]...)
		words, err = s.request(sense.OpOR, srcs, bits, target, words, res)
		if err != nil {
			return err
		}
		done += take
	}
	s.srcs = srcs[:0]
	return nil
}

// --- logical-ID mapping ---

// Mapper models the default pim_malloc placement policy for a homogeneous
// collection of bit-vectors (adjacency rows, index bitmaps): logical vector
// i occupies the i-th usable row of the sequential allocation order, with
// the per-subarray scratch row skipped. Applications use it to derive the
// operand grouping of a logical op without instantiating a memory.
type Mapper struct {
	geo    memarch.Geometry
	usable int // rows per subarray available to data
}

// NewMapper builds a mapper for the geometry (scratch rows reserved).
func NewMapper(geo memarch.Geometry) (Mapper, error) {
	if err := geo.Validate(); err != nil {
		return Mapper{}, err
	}
	return Mapper{geo: geo, usable: geo.RowsPerSubarray - 1}, nil
}

// RowOf returns the row address of logical vector id. Panics on a negative
// id or one past the memory's capacity — ids come from the mapper's own
// allocator, so either is a runtime bug.
func (m Mapper) RowOf(id int) memarch.RowAddr {
	if id < 0 {
		panic(fmt.Sprintf("pimrt: negative vector id %d", id))
	}
	sub := id / m.usable
	row := id % m.usable
	flat := uint64(sub)*uint64(m.geo.RowsPerSubarray) + uint64(row)
	if flat >= uint64(m.geo.TotalRows()) {
		panic(fmt.Sprintf("pimrt: vector id %d exceeds memory capacity", id))
	}
	return m.geo.Decode(flat)
}

// SpecForIDs builds the scheduler-grouped OR spec over logical vector IDs.
func (m Mapper) SpecForIDs(ids []int, bits int) (workload.OpSpec, error) {
	rows := make([]memarch.RowAddr, len(ids))
	for i, id := range ids {
		rows[i] = m.RowOf(id)
	}
	return SpecForOR(rows, bits)
}

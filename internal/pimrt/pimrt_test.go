package pimrt

import (
	"errors"
	"math/rand"
	"testing"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

func newAlloc(t *testing.T, scratch bool) *Allocator {
	t.Helper()
	a, err := NewAllocator(memarch.Default(), scratch)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAllocSequentialSharesSubarray(t *testing.T) {
	a := newAlloc(t, true)
	rows, err := a.AllocRows(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 100 {
		t.Fatalf("got %d rows", len(rows))
	}
	if !memarch.SameSubarray(rows...) {
		t.Error("first 100 sequential rows should share a subarray")
	}
	if !memarch.DistinctRows(memarch.Default(), rows...) {
		t.Error("rows not distinct")
	}
}

func TestAllocNeverHandsOutScratch(t *testing.T) {
	a := newAlloc(t, true)
	geo := memarch.Default()
	rows, err := a.AllocRows(3 * geo.RowsPerSubarray)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Row == geo.RowsPerSubarray-1 {
			t.Fatalf("scratch row %v allocated", r)
		}
	}
}

func TestAllocWithoutScratchUsesAllRows(t *testing.T) {
	a := newAlloc(t, false)
	geo := memarch.Default()
	rows, err := a.AllocRows(geo.RowsPerSubarray)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.Row != geo.RowsPerSubarray-1 {
		t.Error("non-reserving allocator should use the last row")
	}
}

func TestAllocGroupAffinity(t *testing.T) {
	a := newAlloc(t, true)
	// Burn part of a subarray so a big group must skip to the next.
	if _, err := a.AllocRows(1000); err != nil {
		t.Fatal(err)
	}
	group, err := a.AllocGroupRows(128)
	if err != nil {
		t.Fatal(err)
	}
	if !memarch.SameSubarray(group...) {
		t.Error("group does not share a subarray")
	}
}

func TestAllocGroupTooBig(t *testing.T) {
	a := newAlloc(t, true)
	if _, err := a.AllocGroupRows(memarch.Default().RowsPerSubarray); err == nil {
		t.Error("group equal to full subarray should fail with scratch reserved")
	}
}

func TestAllocErrors(t *testing.T) {
	a := newAlloc(t, true)
	if _, err := a.AllocRows(0); err == nil {
		t.Error("zero alloc accepted")
	}
	if _, err := a.AllocGroupRows(-1); err == nil {
		t.Error("negative group accepted")
	}
	bad := memarch.Default()
	bad.Channels = 0
	if _, err := NewAllocator(bad, true); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestFreeAndReuse(t *testing.T) {
	a := newAlloc(t, true)
	rows, err := a.AllocRows(10)
	if err != nil {
		t.Fatal(err)
	}
	live := a.AllocatedRows()
	a.Free(rows[:5])
	if a.AllocatedRows() != live-5 {
		t.Errorf("AllocatedRows=%d want %d", a.AllocatedRows(), live-5)
	}
	reused, err := a.AllocRows(5)
	if err != nil {
		t.Fatal(err)
	}
	// Freed rows come back first, in ascending order.
	for i, r := range reused {
		if r != rows[i] {
			t.Errorf("reuse[%d]=%v want %v", i, r, rows[i])
		}
	}
}

func TestOutOfMemory(t *testing.T) {
	small := memarch.Default()
	small.Channels = 1
	small.RanksPerChannel = 1
	small.BanksPerChip = 1
	small.SubarraysPerBank = 1
	small.RowsPerSubarray = 4
	a, err := NewAllocator(small, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocRows(3); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocRows(1); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("err=%v want ErrOutOfMemory", err)
	}
}

func TestGroupBySubarray(t *testing.T) {
	rows := []memarch.RowAddr{
		{Bank: 0, Subarray: 0, Row: 1},
		{Bank: 0, Subarray: 1, Row: 1},
		{Bank: 0, Subarray: 0, Row: 2},
		{Bank: 1, Subarray: 0, Row: 1},
	}
	groups := GroupBySubarray(rows)
	if len(groups) != 3 {
		t.Fatalf("got %d groups want 3", len(groups))
	}
	if len(groups[0]) != 2 || groups[0][0].Row != 1 || groups[0][1].Row != 2 {
		t.Errorf("group 0 wrong: %v", groups[0])
	}
}

func TestPlacementOf(t *testing.T) {
	intra := []memarch.RowAddr{{Row: 0}, {Row: 1}}
	if p, err := PlacementOf(intra); err != nil || p != workload.PlaceIntra {
		t.Errorf("intra: %v %v", p, err)
	}
	interSub := []memarch.RowAddr{{Subarray: 0}, {Subarray: 1}}
	if p, err := PlacementOf(interSub); err != nil || p != workload.PlaceInterSub {
		t.Errorf("inter-sub: %v %v", p, err)
	}
	interBank := []memarch.RowAddr{{Bank: 0}, {Bank: 1}}
	if p, err := PlacementOf(interBank); err != nil || p != workload.PlaceInterBank {
		t.Errorf("inter-bank: %v %v", p, err)
	}
	cross := []memarch.RowAddr{{Channel: 0}, {Channel: 1}}
	if _, err := PlacementOf(cross); !errors.Is(err, pim.ErrCrossRank) {
		t.Errorf("cross: %v", err)
	}
}

func TestSpecForOR(t *testing.T) {
	rows := []memarch.RowAddr{
		{Subarray: 0, Row: 0}, {Subarray: 0, Row: 1}, {Subarray: 1, Row: 0},
	}
	spec, err := SpecForOR(rows, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Op != sense.OpOR || spec.Operands != 3 || spec.Bits != 4096 {
		t.Errorf("spec %+v", spec)
	}
	if spec.Placement != workload.PlaceInterSub {
		t.Errorf("placement %v", spec.Placement)
	}
	if len(spec.Groups) != 2 || spec.Groups[0] != 2 || spec.Groups[1] != 1 {
		t.Errorf("groups %v", spec.Groups)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("spec invalid: %v", err)
	}
	// Pure intra: no groups attached.
	intra, err := SpecForOR(rows[:2], 4096)
	if err != nil {
		t.Fatal(err)
	}
	if intra.Groups != nil || intra.Placement != workload.PlaceIntra {
		t.Errorf("intra spec %+v", intra)
	}
	if _, err := SpecForOR(rows[:1], 64); err == nil {
		t.Error("1-row OR accepted")
	}
}

// newSched builds a scheduler over a fresh PCM memory.
func newSched(t *testing.T) (*Scheduler, *pim.Controller) {
	t.Helper()
	mem, err := memarch.NewMemory(memarch.Default(), nvm.Get(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	geo := memarch.Default()
	s := &Scheduler{
		Ctl:     ctl,
		Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return ScratchRow(geo, sub) },
	}
	return s, ctl
}

func TestSchedulerORSingleSubarray(t *testing.T) {
	s, ctl := newSched(t)
	rng := rand.New(rand.NewSource(1))
	const bits = 4096
	w := bitvec.WordsFor(bits)
	rows := make([]memarch.RowAddr, 10)
	want := make([]uint64, w)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 3, Row: i}
		words := make([]uint64, w)
		for j := range words {
			words[j] = rng.Uint64()
			want[j] |= words[j]
		}
		if err := ctl.Memory().WriteRow(rows[i], words); err != nil {
			t.Fatal(err)
		}
	}
	dst := memarch.RowAddr{Subarray: 3, Row: 500}
	res, err := s.OR(rows, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 {
		t.Errorf("requests=%d want 1 (10-row one-step OR)", res.Requests)
	}
	got := ctl.Memory().ReadRow(dst)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("word %d mismatch", j)
		}
	}
}

func TestSchedulerORAcrossSubarrays(t *testing.T) {
	s, ctl := newSched(t)
	rng := rand.New(rand.NewSource(2))
	const bits = 4096
	w := bitvec.WordsFor(bits)
	var rows []memarch.RowAddr
	want := make([]uint64, w)
	// 3 subarrays × 4 rows each.
	for sub := 0; sub < 3; sub++ {
		for r := 0; r < 4; r++ {
			addr := memarch.RowAddr{Subarray: sub, Row: r}
			rows = append(rows, addr)
			words := make([]uint64, w)
			for j := range words {
				words[j] = rng.Uint64()
				want[j] |= words[j]
			}
			if err := ctl.Memory().WriteRow(addr, words); err != nil {
				t.Fatal(err)
			}
		}
	}
	dst := memarch.RowAddr{Subarray: 10, Row: 0}
	res, err := s.OR(rows, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	// 3 intra collapses + 1 inter combine.
	if res.Requests != 4 {
		t.Errorf("requests=%d want 4", res.Requests)
	}
	got := ctl.Memory().ReadRow(dst)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("word %d mismatch", j)
		}
	}
}

func TestSchedulerORChainsBeyondDepth(t *testing.T) {
	s, ctl := newSched(t)
	const bits = 64
	rows := make([]memarch.RowAddr, 200) // beyond the 128-row depth
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 0, Row: i}
		if err := ctl.Memory().WriteRow(rows[i], []uint64{1 << (i % 60)}); err != nil {
			t.Fatal(err)
		}
	}
	dst := memarch.RowAddr{Subarray: 0, Row: 900}
	res, err := s.OR(rows, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 2 {
		t.Errorf("requests=%d want 2 (128 + 72+acc)", res.Requests)
	}
	want := uint64(0)
	for i := range rows {
		want |= 1 << (i % 60)
	}
	if got := ctl.Memory().ReadRow(dst)[0]; got != want {
		t.Errorf("result %x want %x", got, want)
	}
}

func TestSchedulerSingleRowCopies(t *testing.T) {
	s, ctl := newSched(t)
	src := memarch.RowAddr{Subarray: 1, Row: 7}
	if err := ctl.Memory().WriteRow(src, []uint64{42}); err != nil {
		t.Fatal(err)
	}
	dst := memarch.RowAddr{Subarray: 2, Row: 9}
	res, err := s.OR([]memarch.RowAddr{src}, 64, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 1 || ctl.Memory().ReadRow(dst)[0] != 42 {
		t.Error("single-row OR should copy")
	}
	if _, err := s.OR(nil, 64, dst); err == nil {
		t.Error("empty OR accepted")
	}
}

func TestMapperRowOf(t *testing.T) {
	m, err := NewMapper(memarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	geo := memarch.Default()
	usable := geo.RowsPerSubarray - 1
	// IDs within one subarray's usable rows stay in that subarray.
	a := m.RowOf(0)
	b := m.RowOf(usable - 1)
	if !memarch.SameSubarray(a, b) {
		t.Error("first usable block spans subarrays")
	}
	// The scratch row is never mapped.
	for _, id := range []int{0, usable - 1, usable, 5 * usable} {
		if r := m.RowOf(id); r.Row == geo.RowsPerSubarray-1 {
			t.Errorf("id %d mapped to the scratch row", id)
		}
	}
	// The next ID crosses into the next subarray.
	c := m.RowOf(usable)
	if memarch.SameSubarray(a, c) {
		t.Error("id past the usable block did not advance subarrays")
	}
	// Injective over a window.
	seen := map[uint64]bool{}
	for id := 0; id < 4*usable; id++ {
		k := geo.Encode(m.RowOf(id))
		if seen[k] {
			t.Fatalf("id %d collides", id)
		}
		seen[k] = true
	}
}

func TestMapperPanics(t *testing.T) {
	m, err := NewMapper(memarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []int{-1, 1 << 60} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RowOf(%d) did not panic", bad)
				}
			}()
			m.RowOf(bad)
		}()
	}
	badGeo := memarch.Default()
	badGeo.Channels = 3
	if _, err := NewMapper(badGeo); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestMapperSpecForIDs(t *testing.T) {
	m, err := NewMapper(memarch.Default())
	if err != nil {
		t.Fatal(err)
	}
	usable := memarch.Default().RowsPerSubarray - 1
	// Two IDs in one subarray + one in the next: 2 groups, inter-sub.
	spec, err := m.SpecForIDs([]int{0, 1, usable}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Placement != workload.PlaceInterSub || len(spec.Groups) != 2 {
		t.Errorf("spec %+v", spec)
	}
	if spec.Groups[0] != 2 || spec.Groups[1] != 1 {
		t.Errorf("groups %v", spec.Groups)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAmplificationOfChaining(t *testing.T) {
	// PCM endurance is finite; the scheduler's one-step multi-row OR
	// programs the destination once, while a 2-row chain programs an
	// accumulator row on every step — write amplification the endurance
	// counters make visible.
	s, ctl := newSched(t)
	mem := ctl.Memory()
	rows := make([]memarch.RowAddr, 128)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 4, Row: i}
	}
	dst := memarch.RowAddr{Subarray: 4, Row: 900}

	before := mem.RowWrites()
	if _, err := s.OR(rows, 64, dst); err != nil {
		t.Fatal(err)
	}
	oneStepWrites := mem.RowWrites() - before

	// Manual 2-row chain over the same operands.
	acc := memarch.RowAddr{Subarray: 4, Row: 901}
	before = mem.RowWrites()
	if _, err := ctl.Execute(sense.OpOR, rows[:2], 64, &acc); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows[2:] {
		if _, err := ctl.Execute(sense.OpOR, []memarch.RowAddr{acc, r}, 64, &acc); err != nil {
			t.Fatal(err)
		}
	}
	chainWrites := mem.RowWrites() - before

	if oneStepWrites != 1 {
		t.Errorf("one-step OR wrote %d rows, want 1", oneStepWrites)
	}
	if chainWrites != 127 {
		t.Errorf("2-row chain wrote %d rows, want 127", chainWrites)
	}
	hot, n := mem.HottestRow()
	if hot != acc || n != 127 {
		t.Errorf("hottest row %v/%d, want the chain accumulator %v/127", hot, n, acc)
	}
}

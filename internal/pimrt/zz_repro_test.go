package pimrt

import (
	"math/rand"
	"testing"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/sense"
)

// Repro: chained OR (restore != nil links) under heavy flips — does the
// depth-split rung commit garbage from the failed rung-1 attempt?
func TestReproChainedORChunkedRestore(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s, ctl := newResilientSched(t, memarch.Default(),
			fault.Config{Seed: seed, SenseFlipRate: 1})
		rng := rand.New(rand.NewSource(seed + 100))
		const bits = 4096
		w := bitvec.WordsFor(bits)
		rows := make([]memarch.RowAddr, 200) // > MaxORRows -> chained links
		for i := range rows {
			rows[i] = memarch.RowAddr{Subarray: 3, Row: i}
		}
		want := fillRows(t, ctl, rows, w, rng)
		dst := memarch.RowAddr{Subarray: 3, Row: 900}
		res, err := s.OR(rows, bits, dst)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got := ctl.Memory().ReadRow(res.FinalDst)
		bad := 0
		for j := range want {
			if got[j] != want[j] {
				bad++
			}
		}
		if bad > 0 {
			t.Errorf("seed %d: %d/%d words wrong in stored dst despite resilience (degraded=%q retries=%d)",
				seed, bad, w, res.Degraded, res.Retries)
		}
		_ = sense.OpOR
	}
}

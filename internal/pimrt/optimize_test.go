package pimrt

import (
	"testing"

	"pinatubo/internal/memarch"
)

func row(sub, r int) memarch.RowAddr {
	return memarch.RowAddr{Subarray: sub, Row: r}
}

func TestOptimizeFusesChain(t *testing.T) {
	geo := memarch.Default()
	// Software fold: t1 = a|b; t2 = t1|c; out = t2|d.
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1)}, Dst: row(0, 100), Bits: 64, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 2)}, Dst: row(0, 101), Bits: 64, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 101), row(0, 3)}, Dst: row(0, 200), Bits: 64},
	}
	opt := OptimizeBatch(reqs, 128, geo)
	if len(opt) != 1 {
		t.Fatalf("fused to %d requests, want 1", len(opt))
	}
	if len(opt[0].Srcs) != 4 {
		t.Fatalf("fused request has %d sources want 4", len(opt[0].Srcs))
	}
	if opt[0].Dst != row(0, 200) {
		t.Errorf("fused dst %v", opt[0].Dst)
	}
}

func TestOptimizeRespectsDepth(t *testing.T) {
	geo := memarch.Default()
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1)}, Dst: row(0, 100), Bits: 64, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 2)}, Dst: row(0, 200), Bits: 64},
	}
	// Depth 2 cannot hold a fused 3-operand request.
	opt := OptimizeBatch(reqs, 2, geo)
	if len(opt) != 2 {
		t.Fatalf("depth-2 fusion produced %d requests, want 2 (no fusion)", len(opt))
	}
}

func TestOptimizeKeepsNonTemp(t *testing.T) {
	geo := memarch.Default()
	// t1 is NOT marked temporary: the program reads it later.
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1)}, Dst: row(0, 100), Bits: 64},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 2)}, Dst: row(0, 200), Bits: 64},
	}
	if opt := OptimizeBatch(reqs, 128, geo); len(opt) != 2 {
		t.Fatalf("non-temp dst fused away (%d requests)", len(opt))
	}
}

func TestOptimizeMultipleConsumersBlocked(t *testing.T) {
	geo := memarch.Default()
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1)}, Dst: row(0, 100), Bits: 64, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 2)}, Dst: row(0, 200), Bits: 64},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 3)}, Dst: row(0, 201), Bits: 64},
	}
	if opt := OptimizeBatch(reqs, 128, geo); len(opt) != 3 {
		t.Fatalf("multi-consumer temp fused (%d requests)", len(opt))
	}
}

func TestOptimizeBitsMismatchBlocked(t *testing.T) {
	geo := memarch.Default()
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1)}, Dst: row(0, 100), Bits: 64, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 2)}, Dst: row(0, 200), Bits: 128},
	}
	if opt := OptimizeBatch(reqs, 128, geo); len(opt) != 2 {
		t.Fatal("bit-length mismatch fused")
	}
}

func TestOptimizeDedupesOperands(t *testing.T) {
	geo := memarch.Default()
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1), row(0, 0)}, Dst: row(0, 200), Bits: 64},
	}
	opt := OptimizeBatch(reqs, 128, geo)
	if len(opt[0].Srcs) != 2 {
		t.Fatalf("duplicates not removed: %v", opt[0].Srcs)
	}
}

func TestOptimizedBatchSameResultLowerCost(t *testing.T) {
	s, ctl := newSched(t)
	const bits = 4096
	// Data in four rows of one subarray.
	var data [4]uint64
	for i := 0; i < 4; i++ {
		data[i] = 1 << (10 * i)
		if err := ctl.Memory().WriteRow(row(0, i), []uint64{data[i]}); err != nil {
			t.Fatal(err)
		}
	}
	reqs := []ORRequest{
		{Srcs: []memarch.RowAddr{row(0, 0), row(0, 1)}, Dst: row(0, 100), Bits: bits, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 100), row(0, 2)}, Dst: row(0, 101), Bits: bits, Temp: true},
		{Srcs: []memarch.RowAddr{row(0, 101), row(0, 3)}, Dst: row(0, 200), Bits: bits},
	}
	naiveCost, naiveReqs, err := s.RunBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	naiveOut := ctl.Memory().ReadRow(row(0, 200))[0]

	opt := OptimizeBatch(reqs, ctl.MaxORRows(), ctl.Memory().Geometry())
	optCost, optReqs, err := s.RunBatch(opt)
	if err != nil {
		t.Fatal(err)
	}
	optOut := ctl.Memory().ReadRow(row(0, 200))[0]

	want := data[0] | data[1] | data[2] | data[3]
	if naiveOut != want || optOut != want {
		t.Fatalf("results %x / %x want %x", naiveOut, optOut, want)
	}
	if optReqs >= naiveReqs {
		t.Errorf("optimised batch used %d requests vs naive %d", optReqs, naiveReqs)
	}
	if optCost.Seconds >= naiveCost.Seconds {
		t.Errorf("optimised batch slower: %.3g vs %.3g s", optCost.Seconds, naiveCost.Seconds)
	}
	if optCost.Joules >= naiveCost.Joules {
		t.Errorf("optimised batch costs more energy: %.3g vs %.3g J", optCost.Joules, naiveCost.Joules)
	}
}

func TestRunBatchErrors(t *testing.T) {
	s, _ := newSched(t)
	if _, _, err := s.RunBatch([]ORRequest{{Bits: 64}}); err == nil {
		t.Error("empty source list accepted")
	}
}

package pimrt

import (
	"errors"
	"math/rand"
	"testing"

	"pinatubo/internal/analog"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

// newResilientSched builds a scheduler with fault injection and the default
// resilience policy over a fresh PCM memory.
func newResilientSched(t *testing.T, geo memarch.Geometry, fc fault.Config) (*Scheduler, *pim.Controller) {
	t.Helper()
	mem, err := memarch.NewMemory(geo, nvm.Get(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := fault.New(fc, nvm.Get(nvm.PCM), analog.DefaultSenseConfig(), geo.RowBits())
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachInjector(inj)
	s := &Scheduler{
		Ctl:     ctl,
		Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return ScratchRow(geo, sub) },
		Res:     DefaultResilience(),
	}
	return s, ctl
}

func fillRows(t *testing.T, ctl *pim.Controller, rows []memarch.RowAddr, w int, rng *rand.Rand) []uint64 {
	t.Helper()
	want := make([]uint64, w)
	for _, a := range rows {
		words := make([]uint64, w)
		for j := range words {
			words[j] = rng.Uint64()
			want[j] |= words[j]
		}
		if err := ctl.Memory().WriteRow(a, words); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// The tentpole guarantee: even at a sense-flip rate that makes every deep
// OR fail, the resilient scheduler returns the exact digital result, paying
// with retries and depth reductions instead of wrong bits.
func TestResilientORMatchesGoldenUnderHeavyFlips(t *testing.T) {
	s, ctl := newResilientSched(t, memarch.Default(),
		fault.Config{Seed: 17, SenseFlipRate: 1})
	rng := rand.New(rand.NewSource(4))
	const bits = 4096
	w := bitvec.WordsFor(bits)
	rows := make([]memarch.RowAddr, 128)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 3, Row: i}
	}
	want := fillRows(t, ctl, rows, w, rng)
	dst := memarch.RowAddr{Subarray: 3, Row: 900}
	res, err := s.OR(rows, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := ctl.Memory().ReadRow(res.FinalDst)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("word %d wrong despite resilience", j)
		}
	}
	if !bitvec.FromWords(bits, res.Words).Equal(bitvec.FromWords(bits, want)) {
		t.Fatal("reported words disagree with memory")
	}
	st := s.FaultStats()
	if st.Retries == 0 || st.Verifies == 0 {
		t.Fatalf("a flip rate of 1 must force retries and verifies: %+v", st)
	}
	if st.DepthReductions == 0 {
		t.Fatalf("a 128-row OR at flip rate 1 must take the depth-split rung: %+v", st)
	}
	if res.Degraded == "" || res.Retries == 0 {
		t.Fatalf("result does not report its degradation: %+v", res)
	}
	if st.BitsCorrected == 0 {
		t.Fatalf("no corrected bits recorded: %+v", st)
	}
}

// Fixed-arity ops have no depth to split; they must degrade straight to the
// serial digital path, which senses one row at a time at the read margin.
func TestResilientANDFallsBackToInterDigital(t *testing.T) {
	s, ctl := newResilientSched(t, memarch.Default(),
		fault.Config{Seed: 23, SenseFlipRate: 1})
	rng := rand.New(rand.NewSource(9))
	const bits = 4096
	w := bitvec.WordsFor(bits)
	srcs := []memarch.RowAddr{{Subarray: 1, Row: 0}, {Subarray: 1, Row: 1}}
	a := make([]uint64, w)
	b := make([]uint64, w)
	for j := 0; j < w; j++ {
		a[j], b[j] = rng.Uint64(), rng.Uint64()
	}
	if err := ctl.Memory().WriteRow(srcs[0], a); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Memory().WriteRow(srcs[1], b); err != nil {
		t.Fatal(err)
	}
	dst := memarch.RowAddr{Subarray: 1, Row: 7}
	res, err := s.Execute(sense.OpAND, srcs, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := ctl.Memory().ReadRow(res.FinalDst)
	for j := 0; j < w; j++ {
		if got[j] != (a[j] & b[j]) {
			t.Fatalf("word %d wrong despite resilience", j)
		}
	}
	if res.Degraded != DegradedInter {
		t.Fatalf("Degraded=%q, want %q", res.Degraded, DegradedInter)
	}
	if s.FaultStats().InterFallbacks == 0 {
		t.Fatal("no inter fallback recorded")
	}
}

// preWear programs a row repeatedly so the wear model mints stuck-at bits.
func preWear(t *testing.T, ctl *pim.Controller, addr memarch.RowAddr, bits, times int) {
	t.Helper()
	ones := make([]uint64, bitvec.WordsFor(bits))
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	for i := 0; i < times; i++ {
		if _, err := ctl.WriteRowFromHost(addr, ones, bits); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWornDestinationRetiredAndRemapped(t *testing.T) {
	geo := memarch.Default()
	s, ctl := newResilientSched(t, geo, fault.Config{Seed: 31, WearLimit: 2})
	// Full-row vectors: stuck-at positions are drawn across the whole row,
	// so the verified window must cover it.
	bits := geo.RowBits()
	w := bitvec.WordsFor(bits)
	srcs := []memarch.RowAddr{{Subarray: 2, Row: 0}, {Subarray: 2, Row: 1}}
	ones := make([]uint64, w)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	for _, a := range srcs {
		if err := ctl.Memory().WriteRow(a, ones); err != nil {
			t.Fatal(err)
		}
	}
	// 20 programs at WearLimit=2 mint ~10 stuck bits; with all-ones data at
	// least one is stuck at 0, so the op's writeback cannot stick.
	dst := memarch.RowAddr{Subarray: 2, Row: 500}
	preWear(t, ctl, dst, bits, 20)

	nextSpare := 600
	s.Remap = func(old memarch.RowAddr) (memarch.RowAddr, error) {
		fresh := memarch.RowAddr{Subarray: 2, Row: nextSpare}
		nextSpare++
		return fresh, nil
	}
	res, err := s.Execute(sense.OpAND, srcs, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDst == dst {
		t.Fatal("damaged destination was not remapped")
	}
	got := ctl.Memory().ReadRow(res.FinalDst)
	for j := 0; j < w; j++ {
		if got[j] != ^uint64(0) {
			t.Fatalf("word %d wrong after remap", j)
		}
	}
	st := s.FaultStats()
	if st.RowsRetired == 0 {
		t.Fatalf("no rows retired: %+v", st)
	}
	if res.BitsCorrected == 0 {
		t.Fatal("the intercepted stuck bits were not counted")
	}
}

func TestLadderExhaustsLoudlyWithoutRemap(t *testing.T) {
	geo := memarch.Default()
	s, ctl := newResilientSched(t, geo, fault.Config{Seed: 31, WearLimit: 2})
	// Full-row vectors: stuck-at positions are drawn across the whole row,
	// so the verified window must cover it.
	bits := geo.RowBits()
	w := bitvec.WordsFor(bits)
	srcs := []memarch.RowAddr{{Subarray: 2, Row: 0}, {Subarray: 2, Row: 1}}
	ones := make([]uint64, w)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	for _, a := range srcs {
		if err := ctl.Memory().WriteRow(a, ones); err != nil {
			t.Fatal(err)
		}
	}
	dst := memarch.RowAddr{Subarray: 2, Row: 500}
	preWear(t, ctl, dst, bits, 20)

	// No Remap hook: the ladder must fail with the sentinel, not return a
	// row that silently holds corrupted bits.
	_, err := s.Execute(sense.OpAND, srcs, bits, dst)
	if !errors.Is(err, ErrResilienceExhausted) {
		t.Fatalf("err=%v, want ErrResilienceExhausted", err)
	}
}

// Satellite: off-by-one boundaries of the scheduler's chaining, both at the
// intra one-step depth (MaxORRows) and at the inter combine cap
// (InterORLimit).
func TestChainingBoundaries(t *testing.T) {
	t.Run("intra-depth", func(t *testing.T) {
		cases := []struct {
			rows int
			want int // hardware requests
		}{
			{127, 1},
			{128, 1}, // exactly one full-depth op
			{129, 2}, // one extra row forces a chained second op
			{255, 2}, // 128 + (1 acc + 127)
			{256, 3}, // 128 + 127 + 1 remaining
		}
		for _, tc := range cases {
			s, ctl := newSched(t)
			rng := rand.New(rand.NewSource(int64(tc.rows)))
			const bits = 512
			w := bitvec.WordsFor(bits)
			rows := make([]memarch.RowAddr, tc.rows)
			for i := range rows {
				rows[i] = memarch.RowAddr{Subarray: 5, Row: i}
			}
			want := fillRows(t, ctl, rows, w, rng)
			dst := memarch.RowAddr{Subarray: 5, Row: 1000}
			res, err := s.OR(rows, bits, dst)
			if err != nil {
				t.Fatalf("%d rows: %v", tc.rows, err)
			}
			if res.Requests != tc.want {
				t.Errorf("%d rows: %d requests, want %d", tc.rows, res.Requests, tc.want)
			}
			got := ctl.Memory().ReadRow(dst)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%d rows: word %d wrong", tc.rows, j)
				}
			}
		}
	})

	t.Run("inter-limit", func(t *testing.T) {
		// A geometry with 512 subarrays in one bank, so an inter combine
		// can legally exceed InterORLimit operands.
		geo := memarch.Geometry{
			Channels: 1, RanksPerChannel: 1, ChipsPerRank: 1,
			BanksPerChip: 1, SubarraysPerBank: 512, MatsPerSubarray: 1,
			RowsPerSubarray: 4, MatRowBits: 64, MuxRatio: 32,
		}
		cases := []struct {
			subs int
			want int
		}{
			{pim.InterORLimit - 1, 1},
			{pim.InterORLimit, 1},     // exactly one inter request
			{pim.InterORLimit + 1, 2}, // one over the cap chains
		}
		for _, tc := range cases {
			mem, err := memarch.NewMemory(geo, nvm.Get(nvm.PCM))
			if err != nil {
				t.Fatal(err)
			}
			ctl, err := pim.NewController(mem, 0)
			if err != nil {
				t.Fatal(err)
			}
			s := &Scheduler{
				Ctl:     ctl,
				Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return ScratchRow(geo, sub) },
			}
			rng := rand.New(rand.NewSource(int64(tc.subs)))
			const bits = 64
			rows := make([]memarch.RowAddr, tc.subs)
			for i := range rows {
				rows[i] = memarch.RowAddr{Subarray: i, Row: 0}
			}
			want := fillRows(t, ctl, rows, 1, rng)
			dst := memarch.RowAddr{Subarray: 0, Row: 1}
			res, err := s.OR(rows, bits, dst)
			if err != nil {
				t.Fatalf("%d subarrays: %v", tc.subs, err)
			}
			if res.Requests != tc.want {
				t.Errorf("%d subarrays: %d requests, want %d", tc.subs, res.Requests, tc.want)
			}
			if got := ctl.Memory().ReadRow(dst); got[0] != want[0] {
				t.Fatalf("%d subarrays: wrong result", tc.subs)
			}
		}
	})
}

func TestRetiredRowsStayOutOfCirculation(t *testing.T) {
	a := newAlloc(t, true)
	rows, err := a.AllocRows(4)
	if err != nil {
		t.Fatal(err)
	}
	a.Retire(rows[0])
	if a.RetiredRows() != 1 {
		t.Fatalf("RetiredRows=%d want 1", a.RetiredRows())
	}
	a.Free(rows) // includes the retired row, which must not re-enter
	again, err := a.AllocRows(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range again {
		if r == rows[0] {
			t.Fatal("retired row handed out again")
		}
	}
	// Retiring a freed row removes it from the free list too.
	a.Free(again[:1])
	a.Retire(again[0])
	next, err := a.AllocRows(1)
	if err != nil {
		t.Fatal(err)
	}
	if next[0] == again[0] {
		t.Fatal("retired free-list row handed out again")
	}
}

func TestOutOfMemoryWrapsContext(t *testing.T) {
	small := memarch.Default()
	small.Channels = 1
	small.RanksPerChannel = 1
	small.BanksPerChip = 1
	small.SubarraysPerBank = 1
	small.RowsPerSubarray = 4
	a, err := NewAllocator(small, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocRows(8); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("AllocRows err=%v, want wrapped ErrOutOfMemory", err)
	}
	// A failed AllocRows leaves the frontier consumed, so use a fresh
	// allocator for the group-shaped failure.
	b, err := NewAllocator(small, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AllocGroupRows(3); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AllocGroupRows(3); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("AllocGroupRows err=%v, want wrapped ErrOutOfMemory", err)
	}
}

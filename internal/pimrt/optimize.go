package pimrt

import (
	"fmt"

	"pinatubo/internal/memarch"
	"pinatubo/internal/workload"
)

// This file implements the driver library's request optimiser (the
// "schedule opt" box in the paper's Fig. 4): before issuing a batch of OR
// requests to the hardware, the driver fuses chains that applications
// naturally produce — OR(a,b)→t, OR(t,c)→d becomes OR(a,b,c)→d when t is a
// temporary — so a software fold turns back into the one-step multi-row
// operation Pinatubo exists for.

// ORRequest is one logical OR in a driver batch.
type ORRequest struct {
	Srcs []memarch.RowAddr
	Dst  memarch.RowAddr
	Bits int
	// Temp marks destinations that no one reads after this batch
	// (intermediate accumulators); only those may be fused away.
	Temp bool
}

// OptimizeBatch fuses producer→consumer chains in a request batch. A
// request i is folded into a later request j when
//
//   - i's destination is a temporary,
//   - j is the only later request using it (and uses it as a source),
//   - no request between i and j touches it, and
//   - the fused operand count stays within the one-step depth.
//
// The returned batch preserves program semantics for every non-temporary
// destination. Fusion runs to a fixpoint, so whole fold chains collapse.
func OptimizeBatch(reqs []ORRequest, depth int, geo memarch.Geometry) []ORRequest {
	out := append([]ORRequest(nil), reqs...)
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(out); i++ {
			if !out[i].Temp {
				continue
			}
			j, uses := soleConsumer(out, i, geo)
			if j < 0 || uses != 1 {
				continue
			}
			if out[i].Bits != out[j].Bits {
				continue
			}
			fusedLen := len(out[i].Srcs) + len(out[j].Srcs) - 1
			if fusedLen > depth {
				continue
			}
			// Substitute i's sources for its destination in j.
			key := geo.Encode(out[i].Dst)
			var srcs []memarch.RowAddr
			for _, s := range out[j].Srcs {
				if geo.Encode(s) == key {
					srcs = append(srcs, out[i].Srcs...)
				} else {
					srcs = append(srcs, s)
				}
			}
			out[j].Srcs = dedupeRows(srcs, geo)
			out = append(out[:i], out[i+1:]...)
			changed = true
			break
		}
	}
	for i := range out {
		out[i].Srcs = dedupeRows(out[i].Srcs, geo)
	}
	return out
}

// soleConsumer returns the index of the single later request that reads
// req[i].Dst as a source, and how many times the destination appears as a
// source anywhere after i. It returns -1 if the destination is also
// overwritten or read ambiguously.
func soleConsumer(reqs []ORRequest, i int, geo memarch.Geometry) (int, int) {
	key := geo.Encode(reqs[i].Dst)
	consumer, uses := -1, 0
	for j := i + 1; j < len(reqs); j++ {
		for _, s := range reqs[j].Srcs {
			if geo.Encode(s) == key {
				uses++
				if consumer == -1 {
					consumer = j
				} else if consumer != j {
					return -1, uses // multiple consumers
				}
			}
		}
		if geo.Encode(reqs[j].Dst) == key && j != consumer {
			// Overwritten before/without consumption elsewhere: unsafe.
			return -1, uses
		}
	}
	return consumer, uses
}

// dedupeRows removes duplicate addresses, keeping first occurrences.
func dedupeRows(rows []memarch.RowAddr, geo memarch.Geometry) []memarch.RowAddr {
	seen := make(map[uint64]bool, len(rows))
	out := rows[:0]
	for _, r := range rows {
		k := geo.Encode(r)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, r)
	}
	return out
}

// RunBatch executes a request batch on the scheduler, returning the total
// cost and request count. It is the driver's issue loop.
func (s *Scheduler) RunBatch(reqs []ORRequest) (workload.Cost, int, error) {
	var total workload.Cost
	requests := 0
	for i, r := range reqs {
		if len(r.Srcs) == 0 {
			return workload.Cost{}, 0, fmt.Errorf("pimrt: batch request %d has no sources", i)
		}
		res, err := s.OR(r.Srcs, r.Bits, r.Dst)
		if err != nil {
			return workload.Cost{}, 0, fmt.Errorf("pimrt: batch request %d: %w", i, err)
		}
		total.Add(res.Cost)
		requests += res.Requests
	}
	return total, requests, nil
}

package pimrt

// This file is the runtime half of the verify-and-retry resilience layer.
// Every hardware request the scheduler issues can be verified against the
// controller's digital reference and, on failure, walked down a degradation
// ladder that trades speed for certainty but never returns a wrong answer:
//
//	1. retry      — reissue the same request (transient activation faults,
//	                unlucky sense flips);
//	2. depth-split — re-execute a failing intra-subarray multi-row OR as a
//	                chain of shallower ORs whose analog margins are
//	                exponentially wider (each link is itself resilient);
//	3. inter-digital — force the serial digital datapath, which senses one
//	                row at a time at the full read margin;
//	4. host-cpu   — burst the operands over the DDR bus, compute on the
//	                host, write the result back.
//
// Destination rows whose cells no longer hold what the write drivers
// deliver (stuck-at wear) are detected by the stored/claimed comparison and
// retired through the Remap hook, so the ladder terminates even on damaged
// silicon.

import (
	"errors"
	"fmt"

	"pinatubo/internal/memarch"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

// ErrResilienceExhausted is returned when every rung of the degradation
// ladder failed to produce a verified result. The caller gets an error,
// never silently wrong bits.
var ErrResilienceExhausted = errors.New("pimrt: resilience ladder exhausted without a verified result")

// ErrUncorrectable marks a detected-uncorrectable (double-bit class) ECC
// syndrome. It is wrapped alongside ErrResilienceExhausted when the in-array
// SECDED path escalated and the subsequent degradation ladder also failed,
// so callers can distinguish "ECC gave up" from plain ladder exhaustion.
var ErrUncorrectable = errors.New("pimrt: detected-uncorrectable ECC syndrome")

// Resilience configures the scheduler's verify-and-retry policy.
type Resilience struct {
	// MaxRetries bounds the re-executions attempted on each rung of the
	// ladder before degrading to the next one.
	MaxRetries int
	// MinDepth floors the exponential depth reduction of rung 2 (at least
	// 2 — a 2-row OR is the shallowest the hardware has).
	MinDepth int
	// HostFallback enables the final CPU rung.
	HostFallback bool
	// ECC verifies through the controller's in-array SECDED path instead of
	// leading with read-back: syndrome decode on the program-verify sense,
	// single-bit errors fixed in place, and only detected-uncorrectable
	// syndromes fall into the read-back degradation ladder. Requires the
	// controller to have a codec attached (pim.Controller.EnableECC).
	ECC bool
}

// DefaultResilience returns the policy used when faults are enabled without
// explicit tuning: 3 retries per rung, depth floor 2, host fallback on.
func DefaultResilience() *Resilience {
	return &Resilience{MaxRetries: 3, MinDepth: 2, HostFallback: true}
}

func (s *Scheduler) minDepth() int {
	if s.Res.MinDepth >= 2 {
		return s.Res.MinDepth
	}
	return 2
}

// FaultStats accumulates the scheduler's lifetime resilience activity.
type FaultStats struct {
	Verifies        int64 // read-back verification passes
	Retries         int64 // request re-executions (any rung)
	DepthReductions int64 // rung-2 depth halvings
	InterFallbacks  int64 // requests degraded to the digital inter path
	HostFallbacks   int64 // requests degraded to the host CPU
	RowsRetired     int64 // destination rows retired and remapped
	BitsCorrected   int64 // wrong bits intercepted before reaching a caller

	// In-array SECDED activity (Resilience.ECC mode).
	EccDecodes        int64 // syndrome-decode verification passes
	EccCorrectedBits  int64 // single-bit errors SECDED fixed in place
	EccUncorrectables int64 // detected-uncorrectable syndromes escalated

	// Proactive replication activity (the majority-vote rung).
	Votes        int64 // majority-voted requests executed
	BitsOutvoted int64 // replica-disagreeing bits the vote overrode
}

// FaultStats returns a snapshot of the accumulated resilience activity.
func (s *Scheduler) FaultStats() FaultStats { return s.stats }

// ResetStats clears the accumulated resilience counters — pooled shard
// sandboxes reset through here before their next window.
func (s *Scheduler) ResetStats() { s.stats = FaultStats{} }

// AbsorbStats folds another scheduler's accumulated resilience activity
// into this one. The batch executor runs shards on private scheduler
// stacks and merges their counters back through here, so concurrent
// execution neither drops nor double-counts retries and corrections.
func (s *Scheduler) AbsorbStats(o FaultStats) {
	s.stats.Verifies += o.Verifies
	s.stats.Retries += o.Retries
	s.stats.DepthReductions += o.DepthReductions
	s.stats.InterFallbacks += o.InterFallbacks
	s.stats.HostFallbacks += o.HostFallbacks
	s.stats.RowsRetired += o.RowsRetired
	s.stats.BitsCorrected += o.BitsCorrected
	s.stats.EccDecodes += o.EccDecodes
	s.stats.EccCorrectedBits += o.EccCorrectedBits
	s.stats.EccUncorrectables += o.EccUncorrectables
	s.stats.Votes += o.Votes
	s.stats.BitsOutvoted += o.BitsOutvoted
}

// Degradation rungs reported in ScheduleResult.Degraded (worst one wins).
const (
	DegradedDepthSplit = "depth-split"
	DegradedInter      = "inter-digital"
	DegradedHost       = "host-cpu"
)

var degradedRank = map[string]int{
	"": 0, DegradedDepthSplit: 1, DegradedInter: 2, DegradedHost: 3,
}

// WorseDegraded returns the worse of two degradation rungs.
func WorseDegraded(a, b string) string {
	if degradedRank[b] > degradedRank[a] {
		return b
	}
	return a
}

func (r *ScheduleResult) noteDegraded(d string) {
	if degradedRank[d] > degradedRank[r.Degraded] {
		r.Degraded = d
	}
}

// Execute runs one fixed-arity op (AND/XOR/INV/READ — or a one-step OR)
// through the resilience ladder when it is enabled, plainly otherwise. The
// returned FinalDst differs from dst when the destination row was retired.
func (s *Scheduler) Execute(op sense.Op, srcs []memarch.RowAddr, bits int, dst memarch.RowAddr) (*ScheduleResult, error) {
	res := &ScheduleResult{FinalDst: dst}
	tgt := dst
	if _, err := s.request(op, srcs, bits, &tgt, nil, res); err != nil {
		return nil, err
	}
	res.FinalDst = tgt
	res.finalize()
	return res, nil
}

// record lowers one executed controller request into the running program.
// Requests, Cost and Trace are all derived from the program by finalize —
// nothing is accounted by hand here.
func (res *ScheduleResult) record(r *pim.Result) {
	res.Program.Emit(r.Instr())
	res.Words = r.Words
}

// request executes one hardware request (op over srcs into *target). With
// resilience off it is a plain controller call. With resilience on, the
// result is verified and the degradation ladder walked until a verified
// result lands in *target (possibly remapped); the verified words are
// returned. restore must hold the known-good contents of *target when the
// target is also an operand (a chained accumulator), so failed attempts can
// rebuild it; nil means the target is write-only for this request.
func (s *Scheduler) request(op sense.Op, srcs []memarch.RowAddr, bits int, target *memarch.RowAddr, restore []uint64, res *ScheduleResult) ([]uint64, error) {
	if s.Res == nil {
		r, err := s.Ctl.Execute(op, srcs, bits, target)
		if err != nil {
			return nil, err
		}
		res.record(r)
		return r.Words, nil
	}
	golden, err := s.Ctl.Golden(op, srcs, bits)
	if err != nil {
		return nil, err
	}
	// dirty tracks whether *target may hold garbage from a failed attempt
	// and therefore needs restoring before a self-referencing re-execution.
	dirty := false

	if s.Res.ECC {
		// Rung 0 — in-array SECDED: syndrome decode on the program-verify
		// sense, single-bit repair in place. Only a detected-uncorrectable
		// syndrome falls through to the read-back ladder.
		ok, err := s.eccAttempt(op, srcs, bits, target, restore, golden, res, &dirty)
		if err != nil {
			return nil, err
		}
		if ok {
			if err := s.syncReplicas(*target, bits, res); err != nil {
				return nil, err
			}
			return golden, nil
		}
		ok, err = s.ladder(op, srcs, bits, target, restore, golden, res, &dirty)
		if err != nil {
			return nil, err
		}
		if ok {
			// The ladder programmed *target behind the spare columns' backs;
			// regenerate the check bits at the buffer encoder so later reads
			// and chained ops decode against fresh state (nonlinear path —
			// the result sits in a buffer or on the host, not on spare SAs).
			cost, err := s.Ctl.ECCProgram(*target, golden, bits, sense.OpOR, 0)
			if err != nil {
				return nil, err
			}
			res.Program.Emit(cost.Instr(*target))
			if err := s.syncReplicas(*target, bits, res); err != nil {
				return nil, err
			}
			return golden, nil
		}
		return nil, fmt.Errorf("pimrt: %v over %d rows into %v: %w (%w)",
			op, len(srcs), *target, ErrResilienceExhausted, ErrUncorrectable)
	}

	ok, err := s.ladder(op, srcs, bits, target, restore, golden, res, &dirty)
	if err != nil {
		return nil, err
	}
	if ok {
		if err := s.syncReplicas(*target, bits, res); err != nil {
			return nil, err
		}
		return golden, nil
	}
	return nil, fmt.Errorf("pimrt: %v over %d rows into %v: %w", op, len(srcs), *target, ErrResilienceExhausted)
}

// ladder walks the read-back degradation ladder (rungs 1-4) until a
// verified result lands in *target. It reports whether one did.
func (s *Scheduler) ladder(op sense.Op, srcs []memarch.RowAddr, bits int, target *memarch.RowAddr, restore, golden []uint64, res *ScheduleResult, dirty *bool) (bool, error) {
	// Rung 1 — native execution with bounded retries.
	ok, err := s.attempt(op, srcs, bits, target, restore, golden, res, false, dirty)
	if err != nil || ok {
		return ok, err
	}
	// Rung 2 — exponential depth reduction: a failing intra-subarray
	// multi-row OR re-executes as a chain of shallower ORs whose sensing
	// margins are wider.
	if op == sense.OpOR && len(srcs) > s.minDepth() && memarch.SameSubarray(srcs...) {
		for depth := len(srcs) / 2; depth >= s.minDepth(); depth /= 2 {
			s.stats.DepthReductions++
			res.noteDegraded(DegradedDepthSplit)
			ok, err := s.chunked(srcs, bits, target, restore, depth, res, dirty)
			if err != nil || ok {
				return ok, err
			}
		}
	}
	// Rung 3 — the serial digital datapath: single-row sensing only, no
	// multi-row margin to lose.
	s.stats.InterFallbacks++
	res.noteDegraded(DegradedInter)
	ok, err = s.attempt(op, srcs, bits, target, restore, golden, res, true, dirty)
	if err != nil || ok {
		return ok, err
	}
	// Rung 4 — the host CPU.
	if s.Res.HostFallback {
		s.stats.HostFallbacks++
		res.noteDegraded(DegradedHost)
		ok, err = s.hostAttempt(srcs, bits, target, golden, res)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// eccAttempt is the SECDED rung: execute once (reissuing transient
// activation faults within the retry budget), regenerate the destination's
// spare-column check bits, then decode on the program-verify sense.
// Single-bit errors are repaired in place and the request completes without
// ever reading the row back; anything SECDED cannot fix escalates.
func (s *Scheduler) eccAttempt(op sense.Op, srcs []memarch.RowAddr, bits int, target *memarch.RowAddr, restore, golden []uint64, res *ScheduleResult, dirty *bool) (bool, error) {
	for try := 0; try <= s.Res.MaxRetries; try++ {
		if try > 0 {
			s.stats.Retries++
			res.Retries++
		}
		if *dirty && restore != nil {
			if err := s.hostWrite(*target, restore, bits, res); err != nil {
				return false, err
			}
		}
		r, err := s.nativeExec(op, srcs, bits, target)
		if err != nil {
			if errors.Is(err, pim.ErrActivationFault) {
				continue // nothing was sensed or written; reissue
			}
			return false, err
		}
		res.record(r)
		*dirty = true
		cost, err := s.Ctl.ECCProgram(*target, golden, bits, op, len(srcs))
		if err != nil {
			return false, err
		}
		res.Program.Emit(cost.Instr(*target))
		v, err := s.Ctl.CorrectOrEscalate(*target, bits, golden)
		if err != nil {
			return false, err
		}
		s.stats.EccDecodes++
		res.Program.Emit(v.Instr(*target))
		s.stats.EccCorrectedBits += int64(v.CorrectedBits)
		res.BitsCorrected += int64(v.CorrectedBits)
		if v.OK {
			res.Words = golden
			return true, nil
		}
		// Detected-uncorrectable (or a repair the cells would not hold):
		// no blind retry — the ladder's read-back rungs take over.
		s.stats.EccUncorrectables++
		return false, nil
	}
	return false, nil
}

// attempt is one rung of bounded retries: execute (natively or over the
// forced digital path), verify against golden, retire the destination on
// evidence of cell damage. It reports whether a verified result landed.
func (s *Scheduler) attempt(op sense.Op, srcs []memarch.RowAddr, bits int, target *memarch.RowAddr, restore, golden []uint64, res *ScheduleResult, digital bool, dirty *bool) (bool, error) {
	for try := 0; try <= s.Res.MaxRetries; try++ {
		if try > 0 {
			s.stats.Retries++
			res.Retries++
		}
		if *dirty && restore != nil {
			// The accumulator operand was clobbered by a failed attempt;
			// rebuild it from the host-side checkpoint. If the row's cells
			// are stuck the restore is corrupted too — the next verify
			// attributes that to a write fault and retires the row.
			if err := s.hostWrite(*target, restore, bits, res); err != nil {
				return false, err
			}
		}
		exec := s.nativeExec
		if digital {
			exec = s.Ctl.ExecuteDigital
		}
		r, err := exec(op, srcs, bits, target)
		if err != nil {
			if errors.Is(err, pim.ErrActivationFault) {
				continue // nothing was sensed or written; reissue
			}
			return false, err
		}
		res.record(r)
		*dirty = true
		v, err := s.Ctl.VerifyAgainst(len(srcs), bits, *target, golden, r.Words)
		if err != nil {
			return false, err
		}
		s.stats.Verifies++
		res.Program.Emit(v.Instr(*target))
		if v.OK {
			res.Words = golden
			return true, nil
		}
		s.stats.BitsCorrected += int64(v.MismatchedBits)
		res.BitsCorrected += int64(v.MismatchedBits)
		if v.WriteFault {
			s.retireTarget(srcs, target)
		}
	}
	return false, nil
}

// chunked re-executes an OR as a chain of at-most-depth-operand links
// accumulating into *target. Every link is itself a fully resilient request
// (its own retries, further splits, inter and host rungs).
func (s *Scheduler) chunked(rows []memarch.RowAddr, bits int, target *memarch.RowAddr, restore []uint64, depth int, res *ScheduleResult, dirty *bool) (bool, error) {
	ops := rows
	acc := restore
	if restore != nil {
		// The accumulator rides along as the head of every link rather
		// than as a chain operand.
		trimmed := make([]memarch.RowAddr, 0, len(rows))
		for _, r := range rows {
			if r != *target {
				trimmed = append(trimmed, r)
			}
		}
		ops = trimmed
	}
	done := 0
	for done < len(ops) {
		var srcs []memarch.RowAddr
		var take int
		if acc == nil {
			take = len(ops)
			if take > depth {
				take = depth
			}
			srcs = append([]memarch.RowAddr(nil), ops[:take]...)
		} else {
			take = len(ops) - done
			if take > depth-1 {
				take = depth - 1
			}
			srcs = append([]memarch.RowAddr{*target}, ops[done:done+take]...)
		}
		words, err := s.request(sense.OpOR, srcs, bits, target, acc, res)
		if err != nil {
			if errors.Is(err, ErrResilienceExhausted) {
				*dirty = true
				return false, nil // let the outer rungs have a go
			}
			return false, err
		}
		acc = words
		done += take
	}
	res.Words = acc
	return true, nil
}

// hostAttempt is the last rung: read every operand over the DDR bus,
// compute on the host, write the verified result back — never wrong, never
// fast (exactly the bus traffic Pinatubo exists to avoid).
func (s *Scheduler) hostAttempt(srcs []memarch.RowAddr, bits int, target *memarch.RowAddr, golden []uint64, res *ScheduleResult) (bool, error) {
	for _, a := range srcs {
		r, err := s.Ctl.ReadRow(a, bits)
		if err != nil {
			return false, err
		}
		res.record(r)
	}
	for try := 0; try <= s.Res.MaxRetries; try++ {
		if try > 0 {
			s.stats.Retries++
			res.Retries++
		}
		if err := s.hostWrite(*target, golden, bits, res); err != nil {
			return false, err
		}
		v, err := s.Ctl.VerifyAgainst(0, bits, *target, golden, golden)
		if err != nil {
			return false, err
		}
		s.stats.Verifies++
		res.Program.Emit(v.Instr(*target))
		if v.OK {
			res.Words = golden
			return true, nil
		}
		s.stats.BitsCorrected += int64(v.MismatchedBits)
		res.BitsCorrected += int64(v.MismatchedBits)
		if v.WriteFault {
			s.retireTarget(srcs, target)
		}
	}
	return false, nil
}

// hostWrite programs a row from the host, charging the bus transfer.
func (s *Scheduler) hostWrite(addr memarch.RowAddr, words []uint64, bits int, res *ScheduleResult) error {
	r, err := s.Ctl.WriteRowFromHost(addr, words, bits)
	if err != nil {
		return err
	}
	res.Program.Emit(r.Instr())
	return nil
}

// retireTarget swaps a damaged destination row for a fresh one through the
// Remap hook, patching any self-reference in srcs. With no hook — or no
// spare rows left — the ladder keeps going with the damaged row and fails
// loudly at the end rather than returning wrong bits.
func (s *Scheduler) retireTarget(srcs []memarch.RowAddr, target *memarch.RowAddr) {
	if s.Remap == nil {
		return
	}
	fresh, err := s.Remap(*target)
	if err != nil {
		return
	}
	s.stats.RowsRetired++
	old := *target
	*target = fresh
	for i := range srcs {
		if srcs[i] == old {
			srcs[i] = fresh
		}
	}
}

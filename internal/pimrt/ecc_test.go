package pimrt

import (
	"errors"
	"math/rand"
	"testing"

	"pinatubo/internal/analog"
	"pinatubo/internal/bitvec"
	"pinatubo/internal/ecc"
	"pinatubo/internal/fault"
	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/pim"
	"pinatubo/internal/sense"
)

// newECCSched builds a scheduler verifying through the in-array SECDED path.
// The injector (when fc enables faults) covers the spare columns too.
func newECCSched(t *testing.T, geo memarch.Geometry, fc fault.Config) (*Scheduler, *pim.Controller) {
	t.Helper()
	mem, err := memarch.NewMemory(geo, nvm.Get(nvm.PCM))
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := pim.NewController(mem, 0)
	if err != nil {
		t.Fatal(err)
	}
	codec := ecc.Default()
	ctl.EnableECC(codec)
	if fc.Enabled() {
		inj, err := fault.New(fc, nvm.Get(nvm.PCM), analog.DefaultSenseConfig(),
			pim.ECCRowBits(geo, codec))
		if err != nil {
			t.Fatal(err)
		}
		ctl.AttachInjector(inj)
	}
	res := DefaultResilience()
	res.ECC = true
	s := &Scheduler{
		Ctl:     ctl,
		Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return ScratchRow(geo, sub) },
		Res:     res,
	}
	return s, ctl
}

// The acceptance headline: on clean hardware, SECDED verification rides the
// program-verify sense and costs a few command slots, where read-back
// verification re-reads every row — the ~44x zero-fault tax this PR exists
// to remove.
func TestECCVerifyCheapOnCleanHardware(t *testing.T) {
	geo := memarch.Default()
	const bits = 1 << 14
	w := bitvec.WordsFor(bits)
	rng := rand.New(rand.NewSource(3))
	rows := make([]memarch.RowAddr, 128)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 1, Row: i}
	}
	dst := memarch.RowAddr{Subarray: 1, Row: 800}

	run := func(configure func(*Scheduler)) (float64, FaultStats) {
		mem, err := memarch.NewMemory(geo, nvm.Get(nvm.PCM))
		if err != nil {
			t.Fatal(err)
		}
		ctl, err := pim.NewController(mem, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := &Scheduler{
			Ctl:     ctl,
			Scratch: func(sub memarch.RowAddr) memarch.RowAddr { return ScratchRow(geo, sub) },
		}
		configure(s)
		r := rand.New(rand.NewSource(3))
		_ = rng
		for _, a := range rows {
			words := make([]uint64, w)
			for j := range words {
				words[j] = r.Uint64()
			}
			if err := ctl.Memory().WriteRow(a, words); err != nil {
				t.Fatal(err)
			}
		}
		res, err := s.OR(rows, bits, dst)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cost.Seconds, s.FaultStats()
	}

	plain, _ := run(func(s *Scheduler) {})
	readback, rbStats := run(func(s *Scheduler) { s.Res = DefaultResilience() })
	eccTime, eccStats := run(func(s *Scheduler) {
		s.Ctl.EnableECC(ecc.Default())
		s.Res = DefaultResilience()
		s.Res.ECC = true
	})

	if rbStats.Verifies == 0 || rbStats.EccDecodes != 0 {
		t.Fatalf("read-back run stats off: %+v", rbStats)
	}
	if eccStats.EccDecodes == 0 || eccStats.Verifies != 0 {
		t.Fatalf("ECC run stats off: %+v", eccStats)
	}
	if eccStats.EccUncorrectables != 0 || eccStats.EccCorrectedBits != 0 {
		t.Fatalf("clean hardware produced ECC events: %+v", eccStats)
	}
	if ratio := eccTime / plain; ratio > 1.1 {
		t.Errorf("zero-fault ECC verification overhead %.3fx exceeds 1.1x", ratio)
	}
	if ratio := readback / plain; ratio < 2 {
		t.Errorf("read-back verification overhead %.3fx suspiciously low — the comparison lost its point", ratio)
	}
}

// Bit-exactness under a fault rate SECDED can mostly absorb: the scheduler
// must return the oracle answer, correcting or escalating as needed.
func TestECCCorrectsSenseFlipsBitExact(t *testing.T) {
	geo := memarch.Default()
	s, ctl := newECCSched(t, geo, fault.Config{Seed: 8, SenseFlipRate: 2e-3})
	const bits = 1 << 14
	w := bitvec.WordsFor(bits)
	rng := rand.New(rand.NewSource(6))
	rows := make([]memarch.RowAddr, 128)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 2, Row: i}
	}
	want := fillRows(t, ctl, rows, w, rng)
	for trial := 0; trial < 8; trial++ {
		dst := memarch.RowAddr{Subarray: 2, Row: 700 + trial}
		res, err := s.OR(rows, bits, dst)
		if err != nil {
			t.Fatal(err)
		}
		got := ctl.Memory().ReadRow(res.FinalDst)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("trial %d: word %d wrong under ECC verification", trial, j)
			}
		}
	}
	st := s.FaultStats()
	if st.EccDecodes < 8 {
		t.Fatalf("syndrome decodes missing: %+v", st)
	}
	if st.EccCorrectedBits+st.EccUncorrectables == 0 {
		t.Fatalf("flips at 2e-3 over deep ORs produced no ECC events: %+v", st)
	}
}

// A flip rate of 1 floods every group past SECDED's guarantee: the decode
// must escalate (never miscorrect) and the read-back ladder must finish the
// job exactly.
func TestECCEscalatesToLadderOnHeavyFlips(t *testing.T) {
	geo := memarch.Default()
	s, ctl := newECCSched(t, geo, fault.Config{Seed: 13, SenseFlipRate: 1})
	const bits = 4096
	w := bitvec.WordsFor(bits)
	rng := rand.New(rand.NewSource(9))
	rows := make([]memarch.RowAddr, 128)
	for i := range rows {
		rows[i] = memarch.RowAddr{Subarray: 3, Row: i}
	}
	want := fillRows(t, ctl, rows, w, rng)
	dst := memarch.RowAddr{Subarray: 3, Row: 600}
	res, err := s.OR(rows, bits, dst)
	if err != nil {
		t.Fatal(err)
	}
	got := ctl.Memory().ReadRow(res.FinalDst)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("word %d wrong despite escalation", j)
		}
	}
	st := s.FaultStats()
	if st.EccUncorrectables == 0 {
		t.Fatalf("saturating flips never escalated: %+v", st)
	}
	if st.Verifies == 0 {
		t.Fatalf("the read-back ladder never engaged after escalation: %+v", st)
	}
	if res.Degraded == "" {
		t.Error("a saturated deep OR should report a degradation rung")
	}
}

// ECC-mode exhaustion wraps both sentinels so callers can tell "ECC gave up
// and the ladder could not recover" from plain ladder exhaustion.
func TestECCExhaustionWrapsBothSentinels(t *testing.T) {
	geo := memarch.Default()
	s, ctl := newECCSched(t, geo, fault.Config{Seed: 31, WearLimit: 2})
	bits := geo.RowBits()
	w := bitvec.WordsFor(bits)
	srcs := []memarch.RowAddr{{Subarray: 2, Row: 0}, {Subarray: 2, Row: 1}}
	ones := make([]uint64, w)
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	for _, a := range srcs {
		if err := ctl.Memory().WriteRow(a, ones); err != nil {
			t.Fatal(err)
		}
	}
	dst := memarch.RowAddr{Subarray: 2, Row: 500}
	preWear(t, ctl, dst, bits, 20)

	_, err := s.Execute(sense.OpAND, srcs, bits, dst)
	if !errors.Is(err, ErrResilienceExhausted) {
		t.Fatalf("err=%v, want ErrResilienceExhausted", err)
	}
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("err=%v, want ErrUncorrectable wrapped too", err)
	}
	if st := s.FaultStats(); st.EccUncorrectables == 0 {
		t.Fatalf("exhaustion without an escalated syndrome: %+v", st)
	}
}

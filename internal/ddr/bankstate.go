package ddr

import (
	"fmt"

	"pinatubo/internal/memarch"
)

// BankState is a protocol checker for command sequences: it tracks which
// rows each subarray has open (the LWL latches can hold many), whether a
// RESET armed the latches, and whether data-moving commands are issued
// against open rows. The Pinatubo controller validates every sequence it
// emits against this model, so a lowering bug (sensing a closed row,
// activating without RESET between batches, forgetting the precharge)
// fails loudly rather than silently producing an optimistic latency.
type BankState struct {
	// open[subarray key] = set of open row indices.
	open map[[4]int]map[int]bool
	// armed marks subarrays whose LWL latches were RESET since the last
	// batch and may accumulate activations.
	armed map[[4]int]bool
}

// NewBankState returns an all-precharged state.
func NewBankState() *BankState {
	return &BankState{
		open:  make(map[[4]int]map[int]bool),
		armed: make(map[[4]int]bool),
	}
}

func subKey(a memarch.RowAddr) [4]int {
	return [4]int{a.Channel, a.Rank, a.Bank, a.Subarray}
}

// OpenRows returns how many rows the subarray containing a has open.
func (s *BankState) OpenRows(a memarch.RowAddr) int { return len(s.open[subKey(a)]) }

// AnyOpen reports whether any subarray has open rows.
func (s *BankState) AnyOpen() bool {
	for _, rows := range s.open {
		if len(rows) > 0 {
			return true
		}
	}
	return false
}

// Apply advances the state by one command, returning an error on protocol
// violations.
func (s *BankState) Apply(c Cmd) error {
	k := subKey(c.Addr)
	switch c.Kind {
	case CmdLWLReset:
		// RESET closes everything in the subarray and arms the latches.
		delete(s.open, k)
		s.armed[k] = true

	case CmdAct, CmdActTRA:
		// A triple-row activation opens the compute group in one command;
		// the checker tracks it by the group's addressed first row — like
		// CmdAct, it requires the subarray precharged.
		if len(s.open[k]) > 0 {
			return fmt.Errorf("ddr: %v %v with %d row(s) already open and no RESET",
				c.Kind, c.Addr, len(s.open[k]))
		}
		s.addOpen(k, c.Addr.Row)

	case CmdActLatch:
		if !s.armed[k] {
			return fmt.Errorf("ddr: ACT-LATCH %v without a preceding LWL-RESET", c.Addr)
		}
		if len(s.open[k]) == 0 {
			return fmt.Errorf("ddr: ACT-LATCH %v before the first ACT", c.Addr)
		}
		if s.open[k][c.Addr.Row] {
			return fmt.Errorf("ddr: ACT-LATCH %v latched the same row twice", c.Addr)
		}
		s.addOpen(k, c.Addr.Row)

	case CmdSense, CmdWBack, CmdGDLMove:
		// These operate on the currently open rows of the addressed
		// subarray — except moves into a *different* subarray's write
		// drivers, which target buffers rather than open rows; those are
		// permitted against closed subarrays.
		if c.Kind == CmdSense && len(s.open[k]) == 0 {
			return fmt.Errorf("ddr: SENSE %v with no open rows", c.Addr)
		}

	case CmdRd:
		// Bursting to the host requires sensed data in the SAs; the
		// addressed subarray may legitimately be the buffer locus, so no
		// open-row requirement is enforced here.

	case CmdWr, CmdIOMove, CmdMRS:
		// Buffer/host-side commands: no row-state requirement.

	case CmdPre:
		// Precharge closes every open row (the controller's sequences end
		// with a global precharge) and disarms the latches.
		s.open = make(map[[4]int]map[int]bool)
		s.armed = make(map[[4]int]bool)

	default:
		return fmt.Errorf("ddr: unknown command kind %d", int(c.Kind))
	}
	return nil
}

func (s *BankState) addOpen(k [4]int, row int) {
	m := s.open[k]
	if m == nil {
		m = make(map[int]bool)
		s.open[k] = m
	}
	m[row] = true
}

// ValidateSequence replays a full command sequence against a fresh state
// and additionally requires that the sequence leaves the memory precharged
// (no dangling open rows).
func ValidateSequence(cmds []Cmd) error {
	s := NewBankState()
	for i, c := range cmds {
		if err := s.Apply(c); err != nil {
			return fmt.Errorf("command %d (%v): %w", i, c.Kind, err)
		}
	}
	if s.AnyOpen() {
		return fmt.Errorf("ddr: sequence ends with open rows (missing PRE)")
	}
	return nil
}

// Package ddr models the command interface between the memory controller
// and the NVM DIMM: the standard DDR command set, the Pinatubo extensions
// (multi-row activation into the LWL latches, SA-to-WD writeback), and the
// mode-register encoding the paper uses to configure PIM operations (MR4).
//
// The controller lowers every Pinatubo operation to a command sequence; the
// pricer turns a sequence into bus-accurate latency. Keeping this layer
// explicit preserves the paper's key property: only commands and addresses
// travel on the DDR bus during a PIM op — data never does.
package ddr

import (
	"fmt"

	"pinatubo/internal/memarch"
	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

// CmdKind enumerates the commands the controller can issue.
type CmdKind int

const (
	// CmdMRS writes a mode register (one command slot).
	CmdMRS CmdKind = iota
	// CmdLWLReset pulses the LWL-latch RESET line of a subarray before a
	// multi-row activation (Fig. 7).
	CmdLWLReset
	// CmdAct opens a row: full activate, tRCD.
	CmdAct
	// CmdActLatch issues one additional row address during a multi-row
	// activation; the selected wordline latches high. Costs one command
	// slot (the array is already biased by the first CmdAct).
	CmdActLatch
	// CmdSense resolves one column group in the (possibly re-referenced)
	// sense amplifiers: tCL.
	CmdSense
	// CmdRd bursts data from the row buffer / SAs onto the DDR bus.
	CmdRd
	// CmdWr bursts data from the DDR bus into the write drivers and
	// programs the cells: bus time plus tWR.
	CmdWr
	// CmdWBack feeds the SA result straight into the write drivers
	// (Pinatubo's in-place update): tWR, no bus time.
	CmdWBack
	// CmdPre precharges / closes the open rows (one command slot).
	CmdPre
	// CmdGDLMove streams one row between a subarray and the bank's global
	// row buffer over the GDLs (inter-subarray datapath).
	CmdGDLMove
	// CmdIOMove streams one row between a bank and the rank's I/O buffer
	// (inter-bank datapath).
	CmdIOMove
	// CmdActTRA simultaneously activates a DRAM subarray's designated
	// triple-row compute group (the in-DRAM computing backend): charge
	// sharing across the three cells on each bitline resolves it to the
	// majority value, which the SAs amplify and restore into all three
	// rows. Addressed by the group's first row; full tRCD, like CmdAct.
	CmdActTRA
)

// String names the command.
func (k CmdKind) String() string {
	names := [...]string{
		"MRS", "LWL-RESET", "ACT", "ACT-LATCH", "SENSE", "RD", "WR",
		"WBACK", "PRE", "GDL-MOVE", "IO-MOVE", "ACT-TRA",
	}
	if k < 0 || int(k) >= len(names) {
		return fmt.Sprintf("CmdKind(%d)", int(k))
	}
	return names[k]
}

// Cmd is one command on the channel.
type Cmd struct {
	Kind CmdKind
	Addr memarch.RowAddr
	// Bits is the payload size for data-moving commands (CmdRd, CmdWr,
	// CmdGDLMove, CmdIOMove); ignored otherwise.
	Bits int
}

// BusParams describes the channel's data path.
type BusParams struct {
	// BytesPerSec is the peak data bandwidth of one channel.
	BytesPerSec float64
	// GDLBitsPerSec is the internal global-data-line bandwidth of one bank.
	GDLBitsPerSec float64
	// IOBitsPerSec is the internal bank-to-I/O-buffer bandwidth.
	IOBitsPerSec float64
}

// DefaultBus returns DDR3-1600 x64 channel parameters (12.8 GB/s) with
// internal datapaths an order of magnitude wider, as in the paper's
// internal-bandwidth discussion.
func DefaultBus() BusParams {
	return BusParams{
		BytesPerSec:   12.8e9,
		GDLBitsPerSec: 1.024e12, // 128 B wide at 1 GHz
		IOBitsPerSec:  5.12e11,  // 64 B wide at 1 GHz
	}
}

// Duration prices a command sequence in seconds, issued back-to-back on one
// channel (the controller model is in-order; overlap across independent
// ops is handled at the workload layer).
func Duration(cmds []Cmd, t nvm.Timing, bus BusParams) float64 {
	total := 0.0
	for _, c := range cmds {
		total += CmdTime(c, t, bus)
	}
	return total
}

// CmdTime prices a single command (the execution time its target resource
// is busy for). Panics on an unknown command kind — an exhaustiveness bug
// when the command set grows, never a data condition.
func CmdTime(c Cmd, t nvm.Timing, bus BusParams) float64 {
	switch c.Kind {
	case CmdMRS, CmdActLatch, CmdPre:
		return t.TCMD
	case CmdLWLReset:
		return t.TRST
	case CmdAct, CmdActTRA:
		return t.TRCD
	case CmdSense:
		return t.TCL
	case CmdRd:
		return float64(c.Bits) / 8 / bus.BytesPerSec
	case CmdWr:
		return float64(c.Bits)/8/bus.BytesPerSec + t.TWR
	case CmdWBack:
		return t.TWR
	case CmdGDLMove:
		return float64(c.Bits) / bus.GDLBitsPerSec
	case CmdIOMove:
		return float64(c.Bits) / bus.IOBitsPerSec
	default:
		panic(fmt.Sprintf("ddr: unknown command kind %d", int(c.Kind)))
	}
}

// --- Mode register 4: the PIM configuration register ---

// MR4 encodes the pending PIM operation for the DIMM: the SA reference /
// datapath selector (op) and the operand-row count. Layout (low to high):
// bits 0..2 op, bits 3..10 rowCount-1.
type MR4 uint16

// EncodeMR4 packs an operation and operand count. rowCount must be 1..256.
func EncodeMR4(op sense.Op, rowCount int) (MR4, error) {
	if op < sense.OpRead || op > sense.OpINV {
		return 0, fmt.Errorf("ddr: cannot encode op %d in MR4", int(op))
	}
	if rowCount < 1 || rowCount > 256 {
		return 0, fmt.Errorf("ddr: MR4 row count %d out of range 1..256", rowCount)
	}
	return MR4(uint16(op) | uint16(rowCount-1)<<3), nil
}

// Decode unpacks the register.
func (m MR4) Decode() (op sense.Op, rowCount int) {
	return sense.Op(m & 0x7), int(m>>3)&0xFF + 1
}

// ModeRegisters models the DIMM's mode-register file.
type ModeRegisters struct {
	regs [8]uint16
}

// Write sets register idx.
func (r *ModeRegisters) Write(idx int, v uint16) error {
	if idx < 0 || idx >= len(r.regs) {
		return fmt.Errorf("ddr: mode register %d out of range", idx)
	}
	r.regs[idx] = v
	return nil
}

// Read returns register idx.
func (r *ModeRegisters) Read(idx int) (uint16, error) {
	if idx < 0 || idx >= len(r.regs) {
		return 0, fmt.Errorf("ddr: mode register %d out of range", idx)
	}
	return r.regs[idx], nil
}

// PIMRegister is the index of the PIM configuration register (the paper
// uses MR4).
const PIMRegister = 4

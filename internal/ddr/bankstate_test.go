package ddr

import (
	"strings"
	"testing"

	"pinatubo/internal/memarch"
)

func addr(sub, row int) memarch.RowAddr {
	return memarch.RowAddr{Subarray: sub, Row: row}
}

func TestValidMultiRowSequence(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdMRS},
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdActLatch, Addr: addr(0, 1)},
		{Kind: CmdActLatch, Addr: addr(0, 2)},
		{Kind: CmdSense, Addr: addr(0, 0)},
		{Kind: CmdWBack, Addr: addr(0, 5)},
		{Kind: CmdPre},
	}
	if err := ValidateSequence(cmds); err != nil {
		t.Fatal(err)
	}
}

func TestActWithoutPreRejected(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 1)}, // second full ACT, no PRE
		{Kind: CmdPre},
	}
	err := ValidateSequence(cmds)
	if err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("err=%v", err)
	}
}

func TestLatchWithoutResetRejected(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdActLatch, Addr: addr(0, 1)},
		{Kind: CmdPre},
	}
	if err := ValidateSequence(cmds); err == nil {
		t.Fatal("latch without RESET accepted")
	}
}

func TestLatchBeforeActRejected(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdActLatch, Addr: addr(0, 1)},
	}
	if err := ValidateSequence(cmds); err == nil {
		t.Fatal("latch before the biasing ACT accepted")
	}
}

func TestDoubleLatchRejected(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdActLatch, Addr: addr(0, 0)},
	}
	if err := ValidateSequence(cmds); err == nil {
		t.Fatal("double latch accepted")
	}
}

func TestSenseWithoutOpenRowsRejected(t *testing.T) {
	cmds := []Cmd{{Kind: CmdSense, Addr: addr(0, 0)}}
	if err := ValidateSequence(cmds); err == nil {
		t.Fatal("sense on closed subarray accepted")
	}
}

func TestDanglingOpenRowsRejected(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdSense, Addr: addr(0, 0)},
		// no PRE
	}
	err := ValidateSequence(cmds)
	if err == nil || !strings.Contains(err.Error(), "open rows") {
		t.Fatalf("err=%v", err)
	}
}

func TestIndependentSubarrays(t *testing.T) {
	// Serial reads from different subarrays are legal without intervening
	// PRE (each subarray has its own row state).
	cmds := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdSense, Addr: addr(0, 0)},
		{Kind: CmdLWLReset, Addr: addr(1, 0)},
		{Kind: CmdAct, Addr: addr(1, 0)},
		{Kind: CmdSense, Addr: addr(1, 0)},
		{Kind: CmdPre},
	}
	if err := ValidateSequence(cmds); err != nil {
		t.Fatal(err)
	}
}

func TestResetReopensSubarray(t *testing.T) {
	// RESET closes the subarray's rows, so a fresh ACT is legal.
	cmds := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdSense, Addr: addr(0, 0)},
		{Kind: CmdLWLReset, Addr: addr(0, 0)},
		{Kind: CmdAct, Addr: addr(0, 7)},
		{Kind: CmdSense, Addr: addr(0, 7)},
		{Kind: CmdPre},
	}
	if err := ValidateSequence(cmds); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCommandRejected(t *testing.T) {
	if err := ValidateSequence([]Cmd{{Kind: CmdKind(42)}}); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestOpenRowsAccounting(t *testing.T) {
	s := NewBankState()
	steps := []Cmd{
		{Kind: CmdLWLReset, Addr: addr(3, 0)},
		{Kind: CmdAct, Addr: addr(3, 0)},
		{Kind: CmdActLatch, Addr: addr(3, 1)},
	}
	for _, c := range steps {
		if err := s.Apply(c); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.OpenRows(addr(3, 0)); got != 2 {
		t.Errorf("OpenRows=%d want 2", got)
	}
	if !s.AnyOpen() {
		t.Error("AnyOpen=false")
	}
	if err := s.Apply(Cmd{Kind: CmdPre}); err != nil {
		t.Fatal(err)
	}
	if s.AnyOpen() {
		t.Error("PRE did not close rows")
	}
}

// TestActTRAProtocol: a triple-row activation behaves like a full ACT at
// the protocol level — it needs its subarray precharged, opens the
// addressed row (so SENSE is legal), and a second activation into the
// same subarray without a PRE is rejected.
func TestActTRAProtocol(t *testing.T) {
	cmds := []Cmd{
		{Kind: CmdActTRA, Addr: addr(0, 30)},
		{Kind: CmdSense, Addr: addr(0, 30)},
		{Kind: CmdWBack, Addr: addr(0, 5)},
		{Kind: CmdPre},
	}
	if err := ValidateSequence(cmds); err != nil {
		t.Fatal(err)
	}
	bad := []Cmd{
		{Kind: CmdAct, Addr: addr(0, 0)},
		{Kind: CmdActTRA, Addr: addr(0, 30)}, // subarray still open
		{Kind: CmdPre},
	}
	err := ValidateSequence(bad)
	if err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("err=%v", err)
	}
}

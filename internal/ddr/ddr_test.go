package ddr

import (
	"math"
	"strings"
	"testing"

	"pinatubo/internal/nvm"
	"pinatubo/internal/sense"
)

var pcmTiming = nvm.Get(nvm.PCM).Timing

func TestCmdKindStrings(t *testing.T) {
	kinds := []CmdKind{CmdMRS, CmdLWLReset, CmdAct, CmdActLatch, CmdSense,
		CmdRd, CmdWr, CmdWBack, CmdPre, CmdGDLMove, CmdIOMove, CmdActTRA}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "CmdKind(") {
			t.Errorf("kind %d has no name", int(k))
		}
		if seen[s] {
			t.Errorf("duplicate name %q", s)
		}
		seen[s] = true
	}
	if CmdKind(99).String() != "CmdKind(99)" {
		t.Error("unknown kind string")
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-15 || math.Abs(a-b) < 1e-9*math.Abs(b) }

func TestDurationSingleCommands(t *testing.T) {
	bus := DefaultBus()
	cases := []struct {
		cmd  Cmd
		want float64
	}{
		{Cmd{Kind: CmdMRS}, pcmTiming.TCMD},
		{Cmd{Kind: CmdLWLReset}, pcmTiming.TRST},
		{Cmd{Kind: CmdAct}, pcmTiming.TRCD},
		{Cmd{Kind: CmdActTRA}, pcmTiming.TRCD},
		{Cmd{Kind: CmdActLatch}, pcmTiming.TCMD},
		{Cmd{Kind: CmdSense}, pcmTiming.TCL},
		{Cmd{Kind: CmdPre}, pcmTiming.TCMD},
		{Cmd{Kind: CmdWBack}, pcmTiming.TWR},
		{Cmd{Kind: CmdRd, Bits: 8 * 1024}, 1024 / bus.BytesPerSec},
		{Cmd{Kind: CmdWr, Bits: 8 * 1024}, 1024/bus.BytesPerSec + pcmTiming.TWR},
		{Cmd{Kind: CmdGDLMove, Bits: 1 << 19}, float64(1<<19) / bus.GDLBitsPerSec},
		{Cmd{Kind: CmdIOMove, Bits: 1 << 19}, float64(1<<19) / bus.IOBitsPerSec},
	}
	for _, c := range cases {
		if got := Duration([]Cmd{c.cmd}, pcmTiming, bus); !approx(got, c.want) {
			t.Errorf("%v: %.4g want %.4g", c.cmd.Kind, got, c.want)
		}
	}
}

func TestDurationSums(t *testing.T) {
	bus := DefaultBus()
	seq := []Cmd{{Kind: CmdLWLReset}, {Kind: CmdAct}, {Kind: CmdActLatch}, {Kind: CmdSense}, {Kind: CmdWBack}}
	want := pcmTiming.TRST + pcmTiming.TRCD + pcmTiming.TCMD + pcmTiming.TCL + pcmTiming.TWR
	if got := Duration(seq, pcmTiming, bus); !approx(got, want) {
		t.Errorf("sequence %.4g want %.4g", got, want)
	}
}

func TestDurationUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	Duration([]Cmd{{Kind: CmdKind(42)}}, pcmTiming, DefaultBus())
}

func TestDefaultBusSane(t *testing.T) {
	bus := DefaultBus()
	if bus.BytesPerSec != 12.8e9 {
		t.Errorf("channel BW %g want 12.8 GB/s (DDR3-1600 x64)", bus.BytesPerSec)
	}
	// The paper's premise: internal bandwidth far exceeds the bus.
	if bus.GDLBitsPerSec/8 <= bus.BytesPerSec {
		t.Error("GDL bandwidth should exceed the DDR bus")
	}
}

func TestMR4RoundTrip(t *testing.T) {
	for _, op := range []sense.Op{sense.OpRead, sense.OpAND, sense.OpOR, sense.OpXOR, sense.OpINV} {
		for _, n := range []int{1, 2, 64, 128, 256} {
			m, err := EncodeMR4(op, n)
			if err != nil {
				t.Fatalf("EncodeMR4(%v,%d): %v", op, n, err)
			}
			gotOp, gotN := m.Decode()
			if gotOp != op || gotN != n {
				t.Errorf("round trip (%v,%d) -> (%v,%d)", op, n, gotOp, gotN)
			}
		}
	}
}

func TestMR4EncodeErrors(t *testing.T) {
	if _, err := EncodeMR4(sense.Op(7), 2); err == nil {
		t.Error("bad op accepted")
	}
	if _, err := EncodeMR4(sense.OpOR, 0); err == nil {
		t.Error("row count 0 accepted")
	}
	if _, err := EncodeMR4(sense.OpOR, 257); err == nil {
		t.Error("row count 257 accepted")
	}
}

func TestModeRegisters(t *testing.T) {
	var r ModeRegisters
	if err := r.Write(PIMRegister, 0xBEE); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(PIMRegister)
	if err != nil || v != 0xBEE {
		t.Fatalf("Read=%x err=%v", v, err)
	}
	if err := r.Write(8, 0); err == nil {
		t.Error("out-of-range write accepted")
	}
	if _, err := r.Read(-1); err == nil {
		t.Error("out-of-range read accepted")
	}
}

package pinatubo

import "pinatubo/internal/memarch"

// Geometry describes the simulated memory organisation: channels of ranks,
// ranks built from lock-step chips, chips from banks, banks from subarrays,
// subarrays from lock-step MATs whose bitlines share sense amplifiers
// through a column multiplexer (Fig. 3 of the paper). All counts must be
// powers of two; New validates.
//
// It mirrors the internal organisation model field for field so the public
// API stays free of internal types: external callers could never name the
// internal one, which made Config.Geometry unusable outside this module
// (the apileak lint rule now guards the whole API surface against such
// leaks).
type Geometry struct {
	Channels         int // independent channels
	RanksPerChannel  int // ranks sharing one channel bus
	ChipsPerRank     int // lock-step chips forming a rank
	BanksPerChip     int // banks per chip
	SubarraysPerBank int // subarrays sharing the bank's global row buffer
	MatsPerSubarray  int // lock-step MATs per subarray
	RowsPerSubarray  int // wordlines per MAT (same in every MAT)
	MatRowBits       int // bits on one MAT row (columns per MAT)
	MuxRatio         int // adjacent columns sharing one SA (the paper: 32)
}

// DefaultGeometry returns the geometry used throughout the evaluation,
// sized so the rank row is 2^19 bits and the concurrent SA width 2^14 bits
// — the organisation behind the paper's Fig. 9 turning points.
func DefaultGeometry() Geometry {
	return fromInternalGeometry(memarch.Default())
}

// RowBits is the rank-logical row width in bits: the unit of one Pinatubo
// operation (vectors up to this length occupy a single row).
func (g Geometry) RowBits() int { return g.internal().RowBits() }

// TotalRows is the number of rank-logical rows the whole memory holds.
func (g Geometry) TotalRows() int { return g.internal().TotalRows() }

// CapacityBits is the total storage capacity in bits.
func (g Geometry) CapacityBits() int64 { return g.internal().CapacityBits() }

// internal converts to the internal organisation model.
func (g Geometry) internal() memarch.Geometry {
	return memarch.Geometry{
		Channels:         g.Channels,
		RanksPerChannel:  g.RanksPerChannel,
		ChipsPerRank:     g.ChipsPerRank,
		BanksPerChip:     g.BanksPerChip,
		SubarraysPerBank: g.SubarraysPerBank,
		MatsPerSubarray:  g.MatsPerSubarray,
		RowsPerSubarray:  g.RowsPerSubarray,
		MatRowBits:       g.MatRowBits,
		MuxRatio:         g.MuxRatio,
	}
}

// fromInternalGeometry converts the internal organisation model to the
// public mirror.
func fromInternalGeometry(g memarch.Geometry) Geometry {
	return Geometry{
		Channels:         g.Channels,
		RanksPerChannel:  g.RanksPerChannel,
		ChipsPerRank:     g.ChipsPerRank,
		BanksPerChip:     g.BanksPerChip,
		SubarraysPerBank: g.SubarraysPerBank,
		MatsPerSubarray:  g.MatsPerSubarray,
		RowsPerSubarray:  g.RowsPerSubarray,
		MatRowBits:       g.MatRowBits,
		MuxRatio:         g.MuxRatio,
	}
}

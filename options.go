package pinatubo

import (
	"context"
	"fmt"
)

// Option configures one Apply, Batch, Plan or batch-window call. Options
// follow the functional-options pattern: the zero call is the legacy
// default (FIFO arbitration, background context, program cache as
// configured), and each option overrides one knob without widening the
// signature.
//
// Precedence rule (the one rule, for every option that shadows a Config
// field): Config sets the System-wide default at construction;
// an Option overrides it for the duration of that one call. So
// Config.DisableProgramCache turns the cache off by default, and
// WithProgramCache(true/false) beats it for a single Apply/Batch/Plan.
type Option func(*callOpts)

// callOpts is the resolved per-call configuration.
type callOpts struct {
	arb Arbiter
	ctx context.Context
	// progCache is the per-call program-cache override: nil follows the
	// System's configured default (Config.DisableProgramCache).
	progCache *bool
}

// WithArbiter selects the channel arbitration policy the call schedules
// under. The default is ArbFIFO, the deterministic legacy policy.
func WithArbiter(arb Arbiter) Option {
	return func(o *callOpts) { o.arb = arb }
}

// WithContext attaches a cancellation context to the call. Apply observes
// cancellation between row chunks: the completed prefix of row batches
// stays applied (exactly as if a shorter vector had been processed) and
// the call returns ctx.Err(). A Batch (or a batch window) observing
// cancellation stops without merging any partial shard state: the System
// is left exactly as if the cancelled batch had never started, and the
// call returns ctx.Err(). The one exception is a fault-injected batch
// that retired a row mid-run and fell back to the sequential replay on
// the live system — there cancellation stops between ops and the
// completed prefix remains applied, exactly as a sequence of Apply calls
// interrupted at that point. Plan runs entirely on sandboxed copies, so
// a cancelled Plan never has side effects.
func WithContext(ctx context.Context) Option {
	return func(o *callOpts) { o.ctx = ctx }
}

// WithProgramCache overrides the lowered-program cache for this call:
// true forces it on, false forces it off, regardless of
// Config.DisableProgramCache (see the precedence rule on Option). The
// cache is a pure latency optimisation — cached and uncached runs are
// bit-identical — so the only reasons to touch this are benchmarking the
// lowering cost itself or pinning that equivalence in tests.
func WithProgramCache(enabled bool) Option {
	return func(o *callOpts) { o.progCache = &enabled }
}

// resolveOpts folds a call's options over the defaults. A nil Option is
// a caller bug (usually a conditional that forgot its else branch), so
// it is rejected with an error instead of being silently skipped.
func resolveOpts(opts []Option) (callOpts, error) {
	o := callOpts{arb: ArbFIFO, ctx: context.Background()}
	for i, f := range opts {
		if f == nil {
			return callOpts{}, fmt.Errorf("pinatubo: option %d of %d is nil", i, len(opts))
		}
		f(&o)
	}
	if o.ctx == nil {
		o.ctx = context.Background()
	}
	return o, nil
}

package pinatubo

import "context"

// Option configures one Batch, Plan or batch-window call. Options follow
// the functional-options pattern: the zero call is the legacy default
// (FIFO arbitration, background context), and each option overrides one
// knob without widening the signature. BatchWith and PlanWith remain as
// deprecated shims over the option forms.
type Option func(*callOpts)

// callOpts is the resolved per-call configuration.
type callOpts struct {
	arb Arbiter
	ctx context.Context
}

// WithArbiter selects the channel arbitration policy the call schedules
// under. The default is ArbFIFO, the deterministic legacy policy.
func WithArbiter(arb Arbiter) Option {
	return func(o *callOpts) { o.arb = arb }
}

// WithContext attaches a cancellation context to the call. A Batch (or a
// batch window) observing cancellation stops without merging any partial
// shard state: the System is left exactly as if the cancelled batch had
// never started, and the call returns ctx.Err(). The one exception is a
// fault-injected batch that retired a row mid-run and fell back to the
// sequential replay on the live system — there cancellation stops between
// ops and the completed prefix remains applied, exactly as a sequence of
// Apply calls interrupted at that point. Plan runs entirely on sandboxed
// copies, so a cancelled Plan never has side effects.
func WithContext(ctx context.Context) Option {
	return func(o *callOpts) { o.ctx = ctx }
}

// resolveOpts folds a call's options over the defaults.
func resolveOpts(opts []Option) callOpts {
	o := callOpts{arb: ArbFIFO, ctx: context.Background()}
	for _, f := range opts {
		if f != nil {
			f(&o)
		}
	}
	if o.ctx == nil {
		o.ctx = context.Background()
	}
	return o
}

package pinatubo

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"pinatubo/internal/bitvec"
	"pinatubo/internal/pimrt"
)

// TestGoldenCompatZeroFault pins the default zero-fault system to the exact
// numbers the pre-ECC build produced (captured from the seed of this PR):
// the API redesign and the ECC plumbing must not move a single bit, cycle
// or joule of the unverified path.
func TestGoldenCompatZeroFault(t *testing.T) {
	sys, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const bits = 1 << 14
	vs, err := sys.AllocGroup(64, bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for _, v := range vs {
		words := make([]uint64, bitvec.WordsFor(bits))
		for j := range words {
			words[j] = rng.Uint64()
		}
		if _, err := sys.Write(v, words); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := sys.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}
	or, err := sys.Or(dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	and, err := sys.And(dst, vs[0], vs[1])
	if err != nil {
		t.Fatal(err)
	}
	xor, err := sys.Xor(dst, vs[2], vs[3])
	if err != nil {
		t.Fatal(err)
	}
	not, err := sys.Not(dst, vs[4])
	if err != nil {
		t.Fatal(err)
	}
	cp, err := sys.Copy(dst, vs[5])
	if err != nil {
		t.Fatal(err)
	}
	words, rd, err := sys.Read(dst)
	if err != nil {
		t.Fatal(err)
	}
	var h uint64 = 1469598103934665603
	for _, w := range words {
		h ^= w
		h *= 1099511628211
	}

	check := func(name string, got Result, class string, req int, latNs int64, joules float64) {
		t.Helper()
		if got.Class.String() != class || got.Requests != req ||
			got.Latency.Nanoseconds() != latNs || got.EnergyJoules != joules {
			t.Errorf("%s: got class=%q req=%d lat=%dns energy=%.17g, want class=%q req=%d lat=%dns energy=%.17g",
				name, got.Class, got.Requests, got.Latency.Nanoseconds(), got.EnergyJoules,
				class, req, latNs, joules)
		}
	}
	check("or", or, "intra-subarray", 1, 260, 1.9591680000000001e-07)
	check("and", and, "intra-subarray", 1, 183, 1.4500240000000001e-07)
	check("xor", xor, "intra-subarray", 1, 192, 1.507368e-07)
	check("not", not, "intra-subarray", 1, 182, 1.441812e-07)
	check("copy", cp, "intra-subarray", 1, 182, 1.441812e-07)
	check("read", rd, "host-read", 1, 190, 1.441812e-07)
	if h != 0x84ba015be86e6e62 {
		t.Errorf("result hash %#x, want 0x84ba015be86e6e62 — data path changed", h)
	}
	st := sys.Stats()
	if st.Requests != 70 || st.BusySeconds != 2.2352949999999994e-05 ||
		st.EnergyJoules != 1.7701415600000014e-05 {
		t.Errorf("stats moved: requests=%d busy=%.17g joules=%.17g", st.Requests, st.BusySeconds, st.EnergyJoules)
	}
	hw := sys.HardwareCounters()
	if hw.Activations != 135 || hw.SenseSteps != 7 || hw.Writebacks != 69 || hw.BusBits != 1064960 {
		t.Errorf("hardware counters moved: %+v", hw)
	}
	if fs := sys.FaultStats(); fs != (FaultStats{}) {
		t.Errorf("zero-fault system accumulated fault stats: %+v", fs)
	}
}

func TestVerifyModeResolution(t *testing.T) {
	cases := []struct {
		name    string
		rc      ResilienceConfig
		fault   FaultConfig
		want    VerifyMode
		wantErr string
	}{
		{name: "default no faults", want: VerifyOff},
		{name: "default with faults", fault: FaultConfig{Seed: 1, SenseFlipRate: 1e-4}, want: VerifyReadback},
		{name: "explicit off beats faults", rc: ResilienceConfig{Verify: VerifyOff},
			fault: FaultConfig{Seed: 1, SenseFlipRate: 1e-4}, want: VerifyOff},
		{name: "explicit readback", rc: ResilienceConfig{Verify: VerifyReadback}, want: VerifyReadback},
		{name: "explicit ecc", rc: ResilienceConfig{Verify: VerifyECC}, want: VerifyECC},
		{name: "ecc with word width", rc: ResilienceConfig{Verify: VerifyECC, ECCWordBits: 16}, want: VerifyECC},
		{name: "bad word width", rc: ResilienceConfig{Verify: VerifyECC, ECCWordBits: 7},
			wantErr: "not one of"},
		{name: "word width without ecc", rc: ResilienceConfig{Verify: VerifyReadback, ECCWordBits: 8},
			wantErr: "requires Verify=VerifyECC"},
		{name: "out of range mode", rc: ResilienceConfig{Verify: VerifyMode(99)},
			wantErr: "unknown VerifyMode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Fault = tc.fault
			cfg.Resilience = tc.rc
			sys, err := New(cfg)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err=%v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := sys.VerifyMode(); got != tc.want {
				t.Fatalf("effective mode %v, want %v", got, tc.want)
			}
		})
	}
}

func TestApplyArityAndEquivalence(t *testing.T) {
	sys := newSys(t)
	const bits = 4096
	vs, err := sys.AllocGroup(4, bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	data := make([][]uint64, len(vs))
	for i, v := range vs {
		data[i] = make([]uint64, bitvec.WordsFor(bits))
		for j := range data[i] {
			data[i][j] = rng.Uint64()
		}
		if _, err := sys.Write(v, data[i]); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := sys.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}

	for _, bad := range []struct {
		op   Op
		srcs []*BitVector
	}{
		{OpOr, nil},
		{OpAnd, vs[:1]},
		{OpAnd, vs[:3]},
		{OpXor, vs[:1]},
		{OpNot, vs[:2]},
		{OpCopy, vs[:0]},
		{Op(99), vs[:1]},
	} {
		if _, err := sys.Apply(bad.op, dst, bad.srcs); err == nil {
			t.Errorf("Apply(%v, %d srcs) accepted a bad arity", bad.op, len(bad.srcs))
		}
	}

	// Each wrapper must be exactly Apply with the corresponding Op: same
	// class, cost and bits.
	type runner func() (Result, error)
	pairs := []struct {
		name    string
		method  runner
		generic runner
		want    func() []uint64
	}{
		{"or", func() (Result, error) { return sys.Or(dst, vs...) },
			func() (Result, error) { return sys.Apply(OpOr, dst, vs) },
			func() []uint64 {
				out := make([]uint64, len(data[0]))
				for _, d := range data {
					for j := range out {
						out[j] |= d[j]
					}
				}
				return out
			}},
		{"and", func() (Result, error) { return sys.And(dst, vs[0], vs[1]) },
			func() (Result, error) { return sys.Apply(OpAnd, dst, []*BitVector{vs[0], vs[1]}) },
			func() []uint64 {
				out := make([]uint64, len(data[0]))
				for j := range out {
					out[j] = data[0][j] & data[1][j]
				}
				return out
			}},
		{"xor", func() (Result, error) { return sys.Xor(dst, vs[2], vs[3]) },
			func() (Result, error) { return sys.Apply(OpXor, dst, []*BitVector{vs[2], vs[3]}) },
			func() []uint64 {
				out := make([]uint64, len(data[0]))
				for j := range out {
					out[j] = data[2][j] ^ data[3][j]
				}
				return out
			}},
		{"not", func() (Result, error) { return sys.Not(dst, vs[0]) },
			func() (Result, error) { return sys.Apply(OpNot, dst, []*BitVector{vs[0]}) },
			func() []uint64 {
				out := make([]uint64, len(data[0]))
				for j := range out {
					out[j] = ^data[0][j]
				}
				return out
			}},
		{"copy", func() (Result, error) { return sys.Copy(dst, vs[1]) },
			func() (Result, error) { return sys.Apply(OpCopy, dst, []*BitVector{vs[1]}) },
			func() []uint64 { return append([]uint64(nil), data[1]...) }},
	}
	for _, p := range pairs {
		rm, err := p.method()
		if err != nil {
			t.Fatalf("%s method: %v", p.name, err)
		}
		rg, err := p.generic()
		if err != nil {
			t.Fatalf("%s Apply: %v", p.name, err)
		}
		if rm.Class != rg.Class || rm.Latency != rg.Latency || rm.EnergyJoules != rg.EnergyJoules {
			t.Errorf("%s: wrapper %+v != Apply %+v", p.name, rm, rg)
		}
		got, _, err := sys.Read(dst)
		if err != nil {
			t.Fatal(err)
		}
		want := bitvec.FromWords(bits, p.want())
		if !bitvec.FromWords(bits, got).Equal(want) {
			t.Errorf("%s: result bits wrong", p.name)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpOr: "or", OpAnd: "and", OpXor: "xor", OpNot: "not", OpCopy: "copy",
	} {
		if op.String() != want {
			t.Errorf("Op %d string %q, want %q", int(op), op.String(), want)
		}
	}
}

// The exported sentinels must be the exact values the runtime wraps, so
// errors.Is works across the package boundary.
func TestSentinelIdentity(t *testing.T) {
	if !errors.Is(ErrResilienceExhausted, pimrt.ErrResilienceExhausted) {
		t.Error("ErrResilienceExhausted is not the runtime sentinel")
	}
	if !errors.Is(ErrUncorrectable, pimrt.ErrUncorrectable) {
		t.Error("ErrUncorrectable is not the runtime sentinel")
	}
}

// eccFaultySys builds a VerifyECC system over faulty hardware.
func eccFaultySys(t testing.TB, fc FaultConfig) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Fault = fc
	cfg.Resilience.Verify = VerifyECC
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestECCBitExactUnderFaults is the property the verification path must
// hold at any swept rate: every result is bit-identical to the host
// computation, whether SECDED corrected it in place or escalated.
func TestECCBitExactUnderFaults(t *testing.T) {
	for _, rate := range []float64{1e-4, 1e-3} {
		sys := eccFaultySys(t, FaultConfig{Seed: 7, SenseFlipRate: rate})
		const bits = 1 << 14
		w := bitvec.WordsFor(bits)
		vs, err := sys.AllocGroup(64, bits)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		golden := make([]uint64, w)
		words := make([]uint64, w)
		for _, v := range vs {
			for j := range words {
				words[j] = rng.Uint64()
				golden[j] |= words[j]
			}
			if _, err := sys.Write(v, words); err != nil {
				t.Fatal(err)
			}
		}
		dst, err := sys.Alloc(bits)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 4; trial++ {
			if _, err := sys.Or(dst, vs...); err != nil {
				t.Fatal(err)
			}
			got, _, err := sys.Read(dst)
			if err != nil {
				t.Fatal(err)
			}
			for j := range golden {
				if got[j] != golden[j] {
					t.Fatalf("rate %g trial %d: word %d wrong under VerifyECC", rate, trial, j)
				}
			}
		}
		st := sys.FaultStats()
		if st.EccDecodes == 0 {
			t.Fatalf("rate %g: VerifyECC ran without syndrome decodes: %+v", rate, st)
		}
		if st.Verifies > st.EccDecodes {
			t.Fatalf("rate %g: read-back dominates an ECC system: %+v", rate, st)
		}
	}
}

// TestECCWearRetiresRows drives host writes into wear-induced stuck bits:
// the ECC write path must keep data exact by correcting or retiring rows.
func TestECCWearRetiresRows(t *testing.T) {
	sys := eccFaultySys(t, FaultConfig{Seed: 3, WearLimit: 6})
	const bits = 2048
	w := bitvec.WordsFor(bits)
	v, err := sys.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	words := make([]uint64, w)
	for round := 0; round < 64; round++ {
		for j := range words {
			words[j] = rng.Uint64()
		}
		if _, err := sys.Write(v, words); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		got, _, err := sys.Read(v)
		if err != nil {
			t.Fatal(err)
		}
		for j := range words {
			if got[j] != words[j] {
				t.Fatalf("round %d: word %d wrong after wear", round, j)
			}
		}
	}
	st := sys.FaultStats()
	if st.StuckRows == 0 {
		t.Skip("wear never minted a stuck bit in this configuration")
	}
	if st.EccDecodes == 0 {
		t.Fatalf("worn ECC system never decoded a syndrome: %+v", st)
	}
}

package pinatubo_test

// One benchmark per table/figure of the paper's evaluation section. Each
// regenerates its figure from the simulator and reports the headline
// metrics via b.ReportMetric, so `go test -bench=.` doubles as the
// reproduction run (cmd/figures prints the full tables).

import (
	"testing"

	"pinatubo/internal/figures"
	"pinatubo/internal/sense"
	"pinatubo/internal/workload"
)

// BenchmarkTable1Workloads builds every workload trace of Table 1.
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		traces, err := figures.AllTraces()
		if err != nil {
			b.Fatal(err)
		}
		if len(traces) != 11 {
			b.Fatalf("%d workloads", len(traces))
		}
	}
}

// BenchmarkFig9Throughput regenerates the OR-throughput sweep and reports
// the two headline corners: the 2-row and 128-row throughput at the full
// 2^19-bit row.
func BenchmarkFig9Throughput(b *testing.B) {
	var rows []figures.Fig9Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.LenLog == 19 && r.Rows == 2 {
			b.ReportMetric(r.GBps, "GBps-2row")
		}
		if r.LenLog == 19 && r.Rows == 128 {
			b.ReportMetric(r.GBps, "GBps-128row")
		}
	}
}

// BenchmarkFig10Speedup regenerates the bitwise-speedup comparison and
// reports the per-engine geometric means (paper: Pinatubo-128 ≈ 500x,
// 22x over S-DRAM).
func BenchmarkFig10Speedup(b *testing.B) {
	var rows []figures.ComparisonRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	g := figures.Gmeans(rows)
	b.ReportMetric(g["Pinatubo-128"], "gmean-P128")
	b.ReportMetric(g["Pinatubo-2"], "gmean-P2")
	b.ReportMetric(g["S-DRAM"], "gmean-SDRAM")
	b.ReportMetric(g["AC-PIM"], "gmean-ACPIM")
}

// BenchmarkFig11Energy regenerates the energy-saving comparison (paper:
// ~2800x average for Pinatubo).
func BenchmarkFig11Energy(b *testing.B) {
	var rows []figures.ComparisonRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig11()
		if err != nil {
			b.Fatal(err)
		}
	}
	g := figures.Gmeans(rows)
	b.ReportMetric(g["Pinatubo-128"], "gmean-P128")
	b.ReportMetric(g["AC-PIM"], "gmean-ACPIM")
}

// BenchmarkFig12Overall regenerates the whole-application comparison
// (paper: 1.12x overall speedup, 1.11x energy; dblp 1.37x; database 1.29x).
func BenchmarkFig12Overall(b *testing.B) {
	var rows []figures.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	sp := figures.Fig12Gmeans(rows, "", false)
	en := figures.Fig12Gmeans(rows, "", true)
	b.ReportMetric(sp["Pinatubo-128"], "speedup-P128")
	b.ReportMetric(en["Pinatubo-128"], "energy-P128")
	for _, r := range rows {
		if r.Workload == "dblp" {
			b.ReportMetric(r.Speedup["Pinatubo-128"], "dblp-speedup")
		}
	}
}

// BenchmarkFig13Area regenerates the area-overhead comparison (paper:
// Pinatubo 0.9%, AC-PIM 6.4%).
func BenchmarkFig13Area(b *testing.B) {
	var res *figures.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = figures.Fig13()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.PinatuboFraction*100, "pinatubo-%")
	b.ReportMetric(res.ACPIMFraction*100, "acpim-%")
}

// BenchmarkEngineMatrix prices one representative request on every engine —
// a quick relative-cost probe.
func BenchmarkEngineMatrix(b *testing.B) {
	engines, err := figures.Engines()
	if err != nil {
		b.Fatal(err)
	}
	all := append(engines.Compared(), engines.SIMD)
	for _, e := range all {
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.OpCost(orSpec()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func orSpec() workload.OpSpec {
	return workload.OpSpec{
		Op:        sense.OpOR,
		Operands:  128,
		Bits:      1 << 19,
		Placement: workload.PlaceIntra,
	}
}

// BenchmarkAblationDepth regenerates the OR-depth ablation and reports the
// endpoints (the value of multi-row sensing).
func BenchmarkAblationDepth(b *testing.B) {
	var rows []figures.DepthAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.DepthAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Depth {
		case 2:
			b.ReportMetric(r.GmeanSpeedup, "gmean-depth2")
		case 128:
			b.ReportMetric(r.GmeanSpeedup, "gmean-depth128")
		}
	}
}

// BenchmarkAblationMux regenerates the column-mux ablation and reports the
// paper's 32:1 design point.
func BenchmarkAblationMux(b *testing.B) {
	var rows []figures.MuxAblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = figures.MuxAblation()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.MuxRatio == 32 {
			b.ReportMetric(r.GBps128Row, "GBps-128row")
			b.ReportMetric(r.AreaFraction*100, "area-%")
		}
	}
}

package pinatubo

import (
	"reflect"
	"testing"

	"pinatubo/internal/chansim"
	"pinatubo/internal/pimrt"
)

// planReference captures one bare controller-level OR trace from an
// identically configured system and lowers it to a chansim template, the
// way a caller without the Plan API would set up a saturation study.
func planReference(t *testing.T) chansim.Request {
	t.Helper()
	ref := newSys(t)
	rows, err := ref.alloc.AllocGroupRows(ref.MaxORRows())
	if err != nil {
		t.Fatal(err)
	}
	geo := ref.mem.Geometry()
	sr, err := ref.sched.OR(rows, ref.RowBits(), pimrt.ScratchRow(geo, rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Trace) != 1 || sr.Trace[0].Cmds == nil {
		t.Fatalf("zero-fault OR trace has %d segments, want 1 command segment", len(sr.Trace))
	}
	return chansim.FromDDR("or", sr.Trace[0].Cmds, ref.mem.Tech().Timing, ref.ctl.Bus(), geo.BanksPerChip)
}

func TestPlanZeroFaultMatchesChansim(t *testing.T) {
	const concurrency = 16
	sys := newSys(t)
	rep, err := sys.Plan(OpOr, concurrency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != 1 {
		t.Errorf("zero-fault Replications=%d want 1", rep.Replications)
	}

	template := planReference(t)
	ks := planKs(concurrency)
	sat, err := chansim.SaturationPoint(template, ks, planFrac)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SaturationPoint != sat {
		t.Errorf("Plan saturation %d != chansim.SaturationPoint %d", rep.SaturationPoint, sat)
	}
	curve, err := chansim.ThroughputCurve(template, ks)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != len(ks) {
		t.Fatalf("plan has %d points want %d", len(rep.Points), len(ks))
	}
	for i, p := range rep.Points {
		if p.Concurrency != ks[i] {
			t.Errorf("point %d concurrency %d want %d", i, p.Concurrency, ks[i])
		}
		// Bit-identical, not approximately equal: the plan replays the
		// same trace through the same scheduler in the same order.
		if p.Throughput != curve[i] {
			t.Errorf("point k=%d throughput %v != chansim curve %v", p.Concurrency, p.Throughput, curve[i])
		}
		if p.BusUtilisation < 0 || p.BusUtilisation > 1 {
			t.Errorf("point k=%d bus utilisation %v outside 0..1", p.Concurrency, p.BusUtilisation)
		}
	}
	if rep.Headroom < 1 {
		t.Errorf("zero-fault headroom %v < 1", rep.Headroom)
	}
}

func TestPlanDeterministicForSeed(t *testing.T) {
	run := func() PlanReport {
		rep, err := newSys(t).Plan(OpOr, 4, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("plans differ for identical config and seed:\n%+v\n%+v", a, b)
	}
}

func TestPlanFaultySanity(t *testing.T) {
	rep, err := newSys(t).Plan(OpXor, 4, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replications != planReplications {
		t.Errorf("faulty Replications=%d want %d", rep.Replications, planReplications)
	}
	sawSat := false
	for _, p := range rep.Points {
		if p.Throughput <= 0 {
			t.Errorf("k=%d throughput %v not positive", p.Concurrency, p.Throughput)
		}
		if p.Latency.P99 < p.Latency.P50 || p.Latency.Max < p.Latency.P99 || p.Latency.P50 <= 0 {
			t.Errorf("k=%d latency ordering violated: %+v", p.Concurrency, p.Latency)
		}
		if p.Concurrency == rep.SaturationPoint {
			sawSat = true
		}
	}
	if !sawSat {
		t.Errorf("saturation point %d not among explored levels %+v", rep.SaturationPoint, rep.Points)
	}
	if rep.Headroom <= 0 {
		t.Errorf("headroom %v not positive", rep.Headroom)
	}
}

// TestPlanArbitersDivergeUnderLoad pins the reason WithArbiter exists: under
// load the arbitration policy is visible in the completion-time tail.
// FIFO issues for whichever request can start earliest, oldest-ready for
// whichever has waited longest, and with 16 operations contending for one
// channel those choices produce different p99s (and throughputs). If a
// refactor made the arbiters collapse into one policy, this test catches
// it.
func TestPlanArbitersDivergeUnderLoad(t *testing.T) {
	const concurrency = 16
	sys := newSys(t)
	fifo, err := sys.Plan(OpOr, concurrency, 0, WithArbiter(ArbFIFO))
	if err != nil {
		t.Fatal(err)
	}
	oldest, err := sys.Plan(OpOr, concurrency, 0, WithArbiter(ArbOldestReady))
	if err != nil {
		t.Fatal(err)
	}
	if fifo.Arb != ArbFIFO || oldest.Arb != ArbOldestReady {
		t.Errorf("reports record Arb %v and %v, want %v and %v",
			fifo.Arb, oldest.Arb, ArbFIFO, ArbOldestReady)
	}
	fp := fifo.Points[len(fifo.Points)-1]
	op := oldest.Points[len(oldest.Points)-1]
	if fp.Latency.P99 == op.Latency.P99 {
		t.Errorf("fifo and oldest-ready p99 identical at k=%d: %v", concurrency, fp.Latency.P99)
	}
	if fp.Throughput == op.Throughput {
		t.Errorf("fifo and oldest-ready throughput identical at k=%d: %v", concurrency, fp.Throughput)
	}

	// A bare Plan defaults to FIFO: identical reports, field for field.
	plain, err := sys.Plan(OpOr, concurrency, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, fifo) {
		t.Errorf("Plan != Plan(WithArbiter(ArbFIFO)):\n%+v\n%+v", plain, fifo)
	}
}

func TestArbiterString(t *testing.T) {
	if s := ArbFIFO.String(); s != "fifo" {
		t.Errorf("ArbFIFO.String() = %q", s)
	}
	if s := ArbOldestReady.String(); s != "oldest-ready" {
		t.Errorf("ArbOldestReady.String() = %q", s)
	}
}

func TestPlanRejectsBadInputs(t *testing.T) {
	s := newSys(t)
	if _, err := s.Plan(OpOr, 0, 0); err == nil {
		t.Error("concurrency 0 accepted")
	}
	if _, err := s.Plan(OpOr, 4, -0.5); err == nil {
		t.Error("negative fault rate accepted")
	}
	if _, err := s.Plan(OpOr, 4, 1.5); err == nil {
		t.Error("fault rate > 1 accepted")
	}
	if _, err := s.Plan(OpPopcount, 4, 0); err == nil {
		t.Error("OpPopcount accepted as a channel operation")
	}
	if _, err := s.Plan(OpOr, 4, 0, WithArbiter(Arbiter(99))); err == nil {
		t.Error("unknown arbiter accepted")
	}
}

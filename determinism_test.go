package pinatubo

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"

	"pinatubo/internal/bitvec"
)

// pipelineRecord is everything externally observable from one end-to-end
// run: per-operation Results, the data read back, the aggregate counters
// and a small planning sweep. Marshalled to JSON so the comparison is over
// the exact bytes a caller logging results would see.
type pipelineRecord struct {
	Results  []Result
	Popcount int
	Data     []uint64
	Stats    Stats
	Faults   FaultStats
	Plan     PlanReport
}

// runPipeline executes the full OR/XOR/ECC pipeline on a fresh
// fault-injected system: seeded random operands, a maximally deep OR, an
// XOR and a NOT under SECDED ECC verification, a popcount, a read-back
// and a short arbiter-aware plan. Everything observable goes into the
// returned JSON.
func runPipeline(t *testing.T) []byte {
	t.Helper()
	sys, err := New(Config{
		Tech:  PCM,
		Fault: FaultConfig{Seed: 7, SenseFlipRate: 1e-5, ActivationFailRate: 1e-6},
		Resilience: ResilienceConfig{
			Verify:      VerifyECC,
			ECCWordBits: 64,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const bits = 1 << 12
	srcs, err := sys.AllocGroup(8, bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var rec pipelineRecord
	for _, v := range srcs {
		words := make([]uint64, bitvec.WordsFor(bits))
		for j := range words {
			words[j] = rng.Uint64()
		}
		res, err := sys.Write(v, words)
		if err != nil {
			t.Fatal(err)
		}
		rec.Results = append(rec.Results, res)
	}
	dst, err := sys.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}

	res, err := sys.Or(dst, srcs...)
	if err != nil {
		t.Fatal(err)
	}
	rec.Results = append(rec.Results, res)
	res, err = sys.Xor(dst, srcs[0], srcs[1])
	if err != nil {
		t.Fatal(err)
	}
	rec.Results = append(rec.Results, res)
	res, err = sys.Not(dst, srcs[2])
	if err != nil {
		t.Fatal(err)
	}
	rec.Results = append(rec.Results, res)

	count, res, err := sys.Popcount(dst)
	if err != nil {
		t.Fatal(err)
	}
	rec.Popcount = count
	rec.Results = append(rec.Results, res)

	data, res, err := sys.Read(dst)
	if err != nil {
		t.Fatal(err)
	}
	rec.Data = data
	rec.Results = append(rec.Results, res)

	rec.Stats = sys.Stats()
	rec.Faults = sys.FaultStats()

	plan, err := sys.Plan(OpXor, 4, 1e-6, WithArbiter(ArbOldestReady))
	if err != nil {
		t.Fatal(err)
	}
	rec.Plan = plan

	out, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPipelineDeterministicAcrossGOMAXPROCS is the repo-level determinism
// regression: the same configuration must produce byte-identical JSON
// output regardless of scheduler parallelism. The simulator is specified
// to be bit-exact — seeded RNG only, no wall clock, no map-iteration
// order in results — and this test exercises that promise end to end
// (write, OR, XOR, NOT, popcount, read, ECC verification, fault
// accounting, planning) under GOMAXPROCS=1 and GOMAXPROCS=NumCPU.
// Test-order independence is covered separately by `go test -shuffle=on`
// in CI.
func TestPipelineDeterministicAcrossGOMAXPROCS(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)

	one := runPipeline(t)
	oneAgain := runPipeline(t)
	if !bytes.Equal(one, oneAgain) {
		t.Fatalf("two identical runs at GOMAXPROCS=1 differ:\n%s\n%s", one, oneAgain)
	}

	runtime.GOMAXPROCS(runtime.NumCPU())
	many := runPipeline(t)
	if !bytes.Equal(one, many) {
		t.Fatalf("GOMAXPROCS=1 and GOMAXPROCS=%d runs differ:\n%s\n%s",
			runtime.NumCPU(), one, many)
	}
}

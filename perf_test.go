package pinatubo

import (
	"math/rand"
	"reflect"
	"testing"
)

// twoSys builds two identically configured systems for differential runs.
func twoSys(t *testing.T, cfg Config) (*System, *System) {
	t.Helper()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

// driveRepeated runs a write + repeated op workload (the shape the program
// cache exists for) and returns the final read-back of every destination.
func driveRepeated(t *testing.T, s *System) [][]uint64 {
	t.Helper()
	const bits = 4096
	vs, err := s.AllocGroup(6, bits)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	data := make([]uint64, bits/64)
	for _, v := range vs[:4] {
		for i := range data {
			data[i] = rng.Uint64()
		}
		if _, err := s.Write(v, data); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 8; round++ {
		if _, err := s.And(vs[4], vs[0], vs[1]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Xor(vs[5], vs[2], vs[3]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Or(vs[4], vs[0], vs[1], vs[2]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Not(vs[5], vs[4]); err != nil {
			t.Fatal(err)
		}
	}
	out := make([][]uint64, 2)
	for i, v := range []*BitVector{vs[4], vs[5]} {
		words, _, err := s.Read(v)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = words
	}
	return out
}

// TestProgramCacheBitIdentical pins the cache's core contract: a cached
// run is bit-identical to an uncached one — same result vectors, same
// ledger, same hardware counters — the cache only skips re-lowering.
func TestProgramCacheBitIdentical(t *testing.T) {
	cached := newSys(t)
	plainCfg := DefaultConfig()
	plainCfg.DisableProgramCache = true
	plain, err := New(plainCfg)
	if err != nil {
		t.Fatal(err)
	}

	a := driveRepeated(t, cached)
	b := driveRepeated(t, plain)
	if !reflect.DeepEqual(a, b) {
		t.Error("cached and uncached runs read back different words")
	}
	if sa, sb := cached.Stats(), plain.Stats(); !reflect.DeepEqual(sa, sb) {
		t.Errorf("cached stats %+v != uncached %+v", sa, sb)
	}
	if ha, hb := cached.HardwareCounters(), plain.HardwareCounters(); !reflect.DeepEqual(ha, hb) {
		t.Errorf("cached hardware counters %+v != uncached %+v", ha, hb)
	}

	pc := cached.PerfStats()
	if pc.ProgramCacheHits == 0 || pc.ProgramCacheMisses == 0 || pc.ProgramCacheEntries == 0 {
		t.Errorf("repeated workload produced no cache traffic: %+v", pc)
	}
	if pp := plain.PerfStats(); pp.ProgramCacheHits != 0 || pp.ProgramCacheMisses != 0 {
		t.Errorf("DisableProgramCache still produced cache traffic: %+v", pp)
	}
}

// TestProgramCacheInvalidatedOnLayoutChange pins the invalidation rule:
// any row-layout mutation (Free, and through the same path remaps and
// replica teardowns) drops every cached program, so a stale program can
// never be served against a moved layout — and the rows freed and handed
// back out still compute correctly afterwards.
func TestProgramCacheInvalidatedOnLayoutChange(t *testing.T) {
	s := newSys(t)
	vs, err := s.AllocGroup(3, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(vs[0], []uint64{7, 7, 7, 7, 7, 7, 7, 7}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(vs[1], []uint64{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.And(vs[2], vs[0], vs[1]); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.PerfStats().ProgramCacheEntries; n == 0 {
		t.Fatal("warm-up left no cached programs")
	}
	if err := s.Free(vs[2]); err != nil {
		t.Fatal(err)
	}
	if n := s.PerfStats().ProgramCacheEntries; n != 0 {
		t.Errorf("%d cached programs survived a Free", n)
	}

	// The freed row is handed back out; the op over the recycled layout
	// must compute fresh, not replay a stale program.
	nv, err := s.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Xor(nv, vs[0], vs[1]); err != nil {
		t.Fatal(err)
	}
	words, _, err := s.Read(nv)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range words {
		if w != 7^9 {
			t.Fatalf("word %d after layout change: %#x want %#x", i, w, 7^9)
		}
	}
}

// TestWithProgramCacheOverride pins the option-vs-Config precedence:
// Config.DisableProgramCache sets the default, WithProgramCache overrides
// it for exactly one call in either direction.
func TestWithProgramCacheOverride(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisableProgramCache = true
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := s.AllocGroup(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	srcs := []*BitVector{vs[0], vs[1]}

	if _, err := s.Apply(OpAnd, vs[2], srcs); err != nil {
		t.Fatal(err)
	}
	if p := s.PerfStats(); p.ProgramCacheHits != 0 || p.ProgramCacheMisses != 0 {
		t.Fatalf("disabled-by-config call produced cache traffic: %+v", p)
	}
	if _, err := s.Apply(OpAnd, vs[2], srcs, WithProgramCache(true)); err != nil {
		t.Fatal(err)
	}
	if p := s.PerfStats(); p.ProgramCacheMisses == 0 {
		t.Fatalf("WithProgramCache(true) did not engage the cache: %+v", p)
	}
	if _, err := s.Apply(OpAnd, vs[2], srcs, WithProgramCache(true)); err != nil {
		t.Fatal(err)
	}
	if p := s.PerfStats(); p.ProgramCacheHits == 0 {
		t.Fatalf("second overridden call did not hit: %+v", p)
	}
	// Back to the Config default: no further traffic.
	before := s.PerfStats()
	if _, err := s.Apply(OpAnd, vs[2], srcs); err != nil {
		t.Fatal(err)
	}
	after := s.PerfStats()
	if after.ProgramCacheHits != before.ProgramCacheHits || after.ProgramCacheMisses != before.ProgramCacheMisses {
		t.Errorf("default call after override produced cache traffic: %+v -> %+v", before, after)
	}

	// And the other direction: a default-on system with a one-call opt-out.
	on, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := on.AllocGroup(3, 256)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := on.Apply(OpAnd, ws[2], []*BitVector{ws[0], ws[1]}, WithProgramCache(false)); err != nil {
		t.Fatal(err)
	}
	if p := on.PerfStats(); p.ProgramCacheHits != 0 || p.ProgramCacheMisses != 0 {
		t.Errorf("WithProgramCache(false) still produced cache traffic: %+v", p)
	}
}

// TestSandboxPoolReuseBitIdentical runs the same multi-shard batch twice
// — the second window's sandboxes come from the pool — against a twin
// executing sequentially: results and ledgers must stay indistinguishable
// from fresh-sandbox execution, and the pool must actually report reuse.
func TestSandboxPoolReuseBitIdentical(t *testing.T) {
	cfg := Config{Tech: PCM, Geometry: spreadGeometry()}
	sys, twin := twoSys(t, cfg)
	ops := buildBatchOps(t, sys, 4096)
	twinOps := buildBatchOps(t, twin, 4096)

	for round := 0; round < 2; round++ {
		if _, err := sys.Batch(ops); err != nil {
			t.Fatal(err)
		}
		for _, op := range twinOps {
			if _, err := twin.Apply(op.Op, op.Dst, op.Srcs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range ops {
		got, _, err := sys.Read(ops[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := twin.Read(twinOps[i].Dst)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("op %d: pooled-batch result differs from sequential twin", i)
		}
	}
	a, b := sys.Stats(), twin.Stats()
	if !reflect.DeepEqual(a.Ops, b.Ops) || a.Requests != b.Requests {
		t.Errorf("pooled-batch ledger %+v != sequential %+v", a, b)
	}

	p := sys.PerfStats()
	if p.SandboxPoolGets == 0 {
		t.Error("batched run never took a sandbox")
	}
	if p.SandboxPoolReuses == 0 {
		t.Errorf("second window reused no pooled sandbox: %+v", p)
	}
}

package pinatubo

import (
	"fmt"
	"math/rand"
	"time"

	"pinatubo/internal/chansim"
	"pinatubo/internal/pimrt"
)

// planFrac is the marginal-gain threshold of the saturation rule — the
// same 5%-per-added-request cutoff chansim.SaturationPoint applies, so the
// zero-fault plan reproduces its answer exactly.
const planFrac = 0.05

// planReplications is the Monte Carlo sample count when faults make
// traces stochastic. The zero-fault path is deterministic and samples
// once.
const planReplications = 3

// Arbiter selects the channel arbitration policy the planner schedules
// under, mirroring the event-driven scheduler's policies.
type Arbiter int

const (
	// ArbFIFO issues the command that can start earliest — the
	// deterministic legacy policy of a simple in-order controller.
	ArbFIFO Arbiter = iota
	// ArbOldestReady issues for the request that has been ready longest,
	// trading a little peak throughput for fairness: a request stalled
	// behind a busy bank cannot be starved by a stream of short newcomers.
	// Under load this narrows the completion-time tail (p99) relative to
	// FIFO.
	ArbOldestReady
)

// String names the arbiter as the CLI -arb flag spells it.
func (a Arbiter) String() string {
	switch a {
	case ArbFIFO:
		return "fifo"
	case ArbOldestReady:
		return "oldest-ready"
	default:
		return fmt.Sprintf("Arbiter(%d)", int(a))
	}
}

// internal maps the public arbiter onto the channel scheduler's.
func (a Arbiter) internal() (chansim.Arbiter, error) {
	switch a {
	case ArbFIFO:
		return chansim.ArbFIFO, nil
	case ArbOldestReady:
		return chansim.ArbOldestReady, nil
	default:
		return 0, fmt.Errorf("pinatubo: unknown Arbiter %d", int(a))
	}
}

// LatencyStats summarises per-operation completion times with
// nearest-rank percentiles.
type LatencyStats struct {
	P50  time.Duration
	P99  time.Duration
	Mean time.Duration
	Max  time.Duration
}

// PlanPoint is one concurrency level of a plan: the throughput the channel
// sustains with k operations in flight and the completion-time spread of
// those operations (pooled across Monte Carlo replications).
type PlanPoint struct {
	// Concurrency is the number of in-flight operations (k).
	Concurrency int
	// Throughput is logical operations per second, averaged across
	// replications.
	Throughput float64
	// Latency pools every operation's completion time across
	// replications.
	Latency LatencyStats
	// Makespan is the scheduled end-to-end time of the k in-flight
	// operations, averaged across replications. At fault rate 0 (one
	// deterministic replication) it is the exact schedule length, and
	// System.Batch of the same op mix under the same arbiter reproduces
	// it bit-identically — the planner's model is checked, not estimated.
	Makespan time.Duration
	// BusUtilisation is the mean command-bus occupancy fraction.
	BusUtilisation float64
}

// PlanReport answers "how many of these should I keep in flight?" for one
// operation shape under a hypothetical fault rate.
type PlanReport struct {
	// Op is the planned operation.
	Op Op
	// FaultRate is the sense-flip rate the plan assumed.
	FaultRate float64
	// Arb is the arbitration policy the plan scheduled under.
	Arb Arbiter
	// Concurrency is the largest k the plan explored.
	Concurrency int
	// Replications is how many independent trace samples were scheduled
	// per point (1 when FaultRate is 0 — the trace is deterministic).
	Replications int
	// Points is the concurrency sweep, ascending in k.
	Points []PlanPoint
	// SaturationPoint is the smallest k beyond which adding another
	// in-flight operation improves throughput by less than 5% per added
	// request — the concurrency worth provisioning for.
	SaturationPoint int
	// Headroom is the throughput multiple available between one in-flight
	// operation and the saturation point: how much per-channel
	// concurrency actually pays under this fault rate.
	Headroom float64
}

// Plan measures how the configured system's throughput scales with
// in-flight operations of the given shape, under a hypothetical sense-flip
// rate, and returns the saturation point, headroom, and per-point p50/p99
// latencies.
//
// The plan runs on sandboxed copies of this system's configuration
// (technology, geometry, resilience policy — with the fault model replaced
// by faultRate alone), so planning never disturbs the live system's
// memory, allocator or statistics. Operand vectors are row-resident and
// maximally deep: OpOr plans a MaxORRows-operand one-step OR, the
// fixed-arity ops their natural operand count, each over a full row.
// Command traces are captured through the resilience ladder — retries,
// depth splits, verification passes and ECC reprograms all widen the
// trace — and replayed through the event-driven channel scheduler. With
// faultRate 0 the traces are deterministic and the result reproduces
// chansim.SaturationPoint bit-identically; with faults the plan Monte
// Carlo samples independent seeded traces.
//
// OpPopcount is not plannable: it is host-bus traffic, not a channel
// operation.
//
// Plan schedules under FIFO arbitration by default; WithArbiter selects
// ArbOldestReady for quantifying the tail-latency gap between arbiters,
// and WithContext attaches cancellation — a cancelled Plan returns the
// context's error and, because every sample ran on a sandbox, has no
// side effects on the live system.
func (s *System) Plan(op Op, concurrency int, faultRate float64, opts ...Option) (PlanReport, error) {
	o, err := resolveOpts(opts)
	if err != nil {
		return PlanReport{}, err
	}
	arb := o.arb
	if concurrency < 1 {
		return PlanReport{}, fmt.Errorf("pinatubo: planning concurrency %d", concurrency)
	}
	if faultRate < 0 || faultRate > 1 {
		return PlanReport{}, fmt.Errorf("pinatubo: fault rate %g outside 0..1", faultRate)
	}
	if op == OpPopcount {
		return PlanReport{}, fmt.Errorf("pinatubo: %v is host traffic, not a channel operation", op)
	}
	if _, err := op.internal(); err != nil {
		return PlanReport{}, err
	}
	carb, err := arb.internal()
	if err != nil {
		return PlanReport{}, err
	}

	reps := planReplications
	if faultRate == 0 {
		reps = 1
	}
	// One trace set per replication: `concurrency` independently sampled
	// operation traces, each copy's banks offset into its own resource
	// range.
	traceSets := make([][]chansim.Request, reps)
	for rep := 0; rep < reps; rep++ {
		if err := o.ctx.Err(); err != nil {
			return PlanReport{}, err
		}
		set, err := s.sampleTraces(op, concurrency, faultRate, rep)
		if err != nil {
			return PlanReport{}, err
		}
		traceSets[rep] = set
	}

	ks := planKs(concurrency)
	report := PlanReport{
		Op:           op,
		FaultRate:    faultRate,
		Arb:          arb,
		Concurrency:  concurrency,
		Replications: reps,
	}
	curve := make([]float64, len(ks))
	for i, k := range ks {
		if err := o.ctx.Err(); err != nil {
			return PlanReport{}, err
		}
		mc, err := chansim.MonteCarlo(
			chansim.MCConfig{Seed: s.cfg.Fault.Seed, Replications: reps, Arb: carb},
			func(_ *rand.Rand, rep int) ([]chansim.Request, error) {
				return traceSets[rep][:k], nil
			})
		if err != nil {
			return PlanReport{}, err
		}
		curve[i] = mc.Throughput.Mean
		report.Points = append(report.Points, PlanPoint{
			Concurrency: k,
			Throughput:  mc.Throughput.Mean,
			Latency: LatencyStats{
				P50:  seconds(mc.Latency.P50),
				P99:  seconds(mc.Latency.P99),
				Mean: seconds(mc.Latency.Mean),
				Max:  seconds(mc.Latency.Max),
			},
			Makespan:       seconds(mc.Makespan.Mean),
			BusUtilisation: mc.BusUtilisation.Mean,
		})
	}
	report.SaturationPoint = chansim.SaturationOf(ks, curve, planFrac)
	for i, k := range ks {
		if k == report.SaturationPoint && curve[0] > 0 {
			report.Headroom = curve[i] / curve[0]
		}
	}
	return report, nil
}

// planKs returns the concurrency levels to explore: powers of two up to
// the cap, plus the cap itself.
func planKs(concurrency int) []int {
	var ks []int
	for k := 1; k < concurrency; k *= 2 {
		ks = append(ks, k)
	}
	return append(ks, concurrency)
}

// seconds converts a simulated-seconds sample to a Duration.
func seconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// sampleTraces builds a sandboxed system with the plan's fault rate and
// captures the command traces of `concurrency` executions of the planned
// operation, converted to schedulable requests with per-copy bank offsets.
func (s *System) sampleTraces(op Op, concurrency int, faultRate float64, rep int) ([]chansim.Request, error) {
	cfg := s.cfg
	cfg.Fault = FaultConfig{Seed: s.cfg.Fault.Seed + int64(rep), SenseFlipRate: faultRate}
	sb, err := New(cfg)
	if err != nil {
		return nil, err
	}
	nsrc := 1
	switch op {
	case OpOr:
		nsrc = sb.MaxORRows()
	case OpAnd, OpXor:
		nsrc = 2
	case OpNot, OpCopy:
		nsrc = 1
	case OpPopcount:
		// Plan rejects OpPopcount before sampling; guard anyway so a future
		// caller cannot reach the scheduler with a host-only op.
		return nil, fmt.Errorf("pinatubo: %v is host traffic, not a channel operation", op)
	default:
		return nil, fmt.Errorf("pinatubo: unknown Op %d", int(op))
	}
	rows, err := sb.alloc.AllocGroupRows(nsrc)
	if err != nil {
		return nil, err
	}
	geo := sb.mem.Geometry()
	dst := pimrt.ScratchRow(geo, rows[0])
	bits := sb.RowBits()
	timing := sb.mem.Tech().Timing
	bus := sb.ctl.Bus()
	banks := geo.BanksPerChip

	reqs := make([]chansim.Request, concurrency)
	for i := 0; i < concurrency; i++ {
		var sr *pimrt.ScheduleResult
		if op == OpOr && nsrc > 1 {
			sr, err = sb.sched.OR(rows, bits, dst)
		} else {
			sop, ierr := op.internal()
			if ierr != nil {
				return nil, ierr
			}
			sr, err = sb.sched.Execute(sop, rows, bits, dst)
		}
		if err != nil {
			return nil, fmt.Errorf("pinatubo: sampling plan trace %d: %w", i, err)
		}
		dst = sr.FinalDst
		reqs[i] = sr.Program.Request(fmt.Sprintf("%v#%d", op, i), timing, bus, banks)
	}
	// Offset each copy into its own bank range with one uniform stride so
	// in-flight operations never collide on a resource ID. In the
	// zero-fault case every copy is identical, so the stride equals the
	// single template's — exactly what chansim.Replicate uses.
	stride := 1
	for _, r := range reqs {
		if st := r.ResourceStride(); st > stride {
			stride = st
		}
	}
	for i := range reqs {
		reqs[i] = reqs[i].WithResourceOffset(i * stride)
	}
	return reqs, nil
}

package pinatubo

import (
	"context"
	"fmt"
	"time"

	"pinatubo/internal/chansim"
	"pinatubo/internal/cmdstream"
	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
)

// BatchOp is one operation of a batch: Dst = Op(Srcs...). The operand
// rules are exactly Apply's (OpPopcount takes no sources and counts Dst).
type BatchOp struct {
	Op   Op
	Dst  *BitVector
	Srcs []*BitVector
}

// BatchResult reports a batch execution: the per-op results Apply would
// have returned, plus the channel-level schedule of the whole batch.
type BatchResult struct {
	// Results[i] is op i's outcome, identical to what a sequential
	// Apply(ops[i]) at the same point would have returned (bit-identical
	// at fault rate 0; see Batch).
	Results []Result
	// Makespan is the scheduled end-to-end time of the batch on the
	// memory channels, with per-bank contention resolved by the
	// event-driven scheduler. At fault rate 0 it is bit-identical to the
	// PlanPoint.Makespan Plan predicts for the same op mix under the
	// same arbiter.
	Makespan time.Duration
	// Completion[i] is op i's finish time within the schedule.
	Completion []time.Duration
	// Sequential is the back-to-back time of the same requests with no
	// overlap — the baseline the batch's concurrency is measured against.
	Sequential time.Duration
	// Speedup is Sequential / Makespan.
	Speedup float64
	// Shards is how many isolated memory shards the data-side effects
	// executed across (1 means a single shard, or a fault-injected run
	// that retired a row mid-batch and was deterministically replayed in
	// op order on the live system).
	Shards int
	// Arb is the arbitration policy the schedule used.
	Arb Arbiter
}

// Batch executes a set of operations as one scheduled batch:
//
//  1. lower — every op is executed through the normal pipeline and its
//     full cmdstream program (requests, verification passes) captured;
//  2. schedule — the programs are converted to per-bank-resource requests
//     and run through the event-driven channel scheduler under the
//     arbiter selected by WithArbiter (ArbFIFO by default);
//  3. execute — the data-side effects run concurrently across independent
//     shards: ops whose footprints (rows, scratch rows, global row
//     buffers, I/O buffers) are disjoint execute on isolated shard
//     memories in parallel, then merge deterministically.
//
// Results are indistinguishable from issuing the same ops sequentially
// through Apply: memory contents, per-op Results, Stats/FaultStats and
// hardware counters all match (integer counters exactly; summed float
// totals may differ from the sequential order by ULPs when more than one
// shard ran). Fault injection shards too: the injector draws every op's
// faults from a per-operation substream seeded by (Seed, op sequence
// number), so each shard replays exactly the faults sequential execution
// would have drawn, on a sandboxed copy of the injector's per-row state.
// The one case that cannot be sandboxed is a mid-batch row retirement
// (the remap must allocate from the live allocator); when a shard hits
// one, the sandboxes are discarded and the batch deterministically
// replays in op order on the live system (Shards reports 1).
//
// WithContext attaches cancellation: a cancelled multi-shard batch
// discards its sandboxes unmerged and the System is left as if the batch
// never ran; a batch whose ops all conflict (one shard) executes in op
// order on the live system and cancellation stops it between ops, leaving
// the completed prefix applied — exactly a sequence of Apply calls
// interrupted at that point.
//
// Ops whose operands span ranks are rejected: the paper's datapaths stop
// at the rank's I/O buffer, and Apply would reject them too. On error the
// batch's memory effects may be partial, exactly as a sequence of Apply
// calls stopped at the failing op.
//
// For streaming admission — building the next batch while the current one
// executes — use NewBatchBuilder and BatchRun instead of collecting a
// slice for Batch.
func (s *System) Batch(ops []BatchOp, opts ...Option) (BatchResult, error) {
	o, err := resolveOpts(opts)
	if err != nil {
		return BatchResult{}, err
	}
	if _, err := o.arb.internal(); err != nil {
		return BatchResult{}, err
	}
	if len(ops) == 0 {
		return BatchResult{}, fmt.Errorf("pinatubo: empty batch")
	}
	if err := o.ctx.Err(); err != nil {
		return BatchResult{}, err
	}
	b := s.NewBatchBuilder()
	for _, op := range ops {
		if err := b.Add(op); err != nil {
			return BatchResult{}, err
		}
	}
	if b.Shards() == 1 {
		// Fully conflicting batch: nothing can overlap, so run in op order
		// directly on the live system. This keeps the ledger merge exact
		// (no shard-order float summation) — the sequential ledger IS the
		// batch ledger.
		results := make([]Result, len(ops))
		progs := make([]cmdstream.Program, len(ops))
		if err := s.runSequential(o.ctx, ops, results, progs); err != nil {
			return BatchResult{}, err
		}
		return s.scheduleBatch(ops, progs, results, 1, o.arb)
	}
	run, err := b.Start(WithArbiter(o.arb), WithContext(o.ctx))
	if err != nil {
		return BatchResult{}, err
	}
	return run.Wait()
}

// fpKey names one exclusive hardware resource an op's data path may touch:
// a row, a bank's global row buffer, or a rank's I/O buffer. Ops whose key
// sets intersect must execute in program order; disjoint ops commute.
type fpKey struct {
	kind byte // 'r' row, 'g' global row buffer, 'i' I/O buffer
	addr memarch.RowAddr
}

// opFootprint computes the key set of one op, conservatively: every
// operand and destination row, the scratch row of every multi-row OR
// group, and — whenever the rows leave a single subarray — the global row
// buffer of every touched bank plus, across banks, the rank's I/O buffer.
// Over-approximation only costs concurrency, never correctness.
func (s *System) opFootprint(op BatchOp) ([]fpKey, error) {
	var keys []fpKey
	if op.Op == OpPopcount {
		for _, r := range op.Dst.rows {
			keys = s.appendRowKeys(keys, r)
		}
		return keys, nil
	}
	geo := s.mem.Geometry()
	for batch := range op.Dst.rows {
		all := make([]memarch.RowAddr, 0, len(op.Srcs)+1)
		for _, src := range op.Srcs {
			all = append(all, src.rows[batch])
		}
		srcRows := all
		all = append(all, op.Dst.rows[batch])
		if !memarch.SameRank(all...) {
			return nil, fmt.Errorf("operands span ranks; split the batch at the rank boundary")
		}
		for _, r := range all {
			keys = s.appendRowKeys(keys, r)
		}
		if op.Op == OpOr {
			for _, g := range pimrt.GroupBySubarray(srcRows) {
				if len(g) > 1 {
					keys = append(keys, fpKey{kind: 'r', addr: pimrt.ScratchRow(geo, g[0])})
				}
			}
		}
		if memarch.SameSubarray(all...) {
			continue
		}
		banks := make(map[[3]int]bool)
		for _, r := range all {
			b := [3]int{r.Channel, r.Rank, r.Bank}
			if banks[b] {
				continue
			}
			banks[b] = true
			keys = append(keys, fpKey{kind: 'g',
				addr: memarch.RowAddr{Channel: r.Channel, Rank: r.Rank, Bank: r.Bank}})
		}
		if len(banks) > 1 {
			keys = append(keys, fpKey{kind: 'i',
				addr: memarch.RowAddr{Channel: all[0].Channel, Rank: all[0].Rank}})
		}
	}
	return keys, nil
}

// appendRowKeys adds one row's footprint key plus — with the replication
// rung active — the keys of its replica copies: a voted activation senses
// them and a verified result re-syncs them, so they are part of the op's
// exclusive data path.
func (s *System) appendRowKeys(keys []fpKey, r memarch.RowAddr) []fpKey {
	keys = append(keys, fpKey{kind: 'r', addr: r})
	for _, rep := range s.replicaRows(r) {
		keys = append(keys, fpKey{kind: 'r', addr: rep})
	}
	return keys
}

// runSequential executes the batch's data-side effects in op order on the
// live system, capturing each op's program. Cancellation is observed
// between ops: the completed prefix stays applied (Apply-sequence
// semantics) and the context's error is returned.
func (s *System) runSequential(ctx context.Context, ops []BatchOp, results []Result, progs []cmdstream.Program) error {
	for i, op := range ops {
		if err := ctx.Err(); err != nil {
			return err
		}
		progs[i] = cmdstream.Program{}
		res, err := s.apply(op.Op, op.Dst, op.Srcs, &progs[i])
		if err != nil {
			return fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
		}
		results[i] = res
	}
	return nil
}

// scheduleBatch converts the captured per-op programs into per-resource
// requests, runs them through the event-driven channel scheduler under
// arb, and assembles the BatchResult.
func (s *System) scheduleBatch(ops []BatchOp, progs []cmdstream.Program, results []Result, nshards int, arb Arbiter) (BatchResult, error) {
	carb, err := arb.internal()
	if err != nil {
		return BatchResult{}, err
	}
	timing := s.mem.Tech().Timing
	bus := s.ctl.Bus()
	banks := s.mem.Geometry().BanksPerChip
	reqs := make([]chansim.Request, len(ops))
	var back float64
	for i := range ops {
		reqs[i] = progs[i].Request(fmt.Sprintf("%v#%d", ops[i].Op, i), timing, bus, banks)
		back += reqs[i].Duration()
	}
	sched, err := chansim.ScheduleWith(reqs, carb)
	if err != nil {
		return BatchResult{}, err
	}
	out := BatchResult{
		Results:    results,
		Makespan:   seconds(sched.Makespan),
		Completion: make([]time.Duration, len(ops)),
		Sequential: seconds(back),
		Shards:     nshards,
		Arb:        arb,
	}
	for i, c := range sched.Completion {
		out.Completion[i] = seconds(c)
	}
	if sched.Makespan > 0 {
		out.Speedup = back / sched.Makespan
	}
	return out, nil
}

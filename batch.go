package pinatubo

import (
	"fmt"
	"sync"
	"time"

	"pinatubo/internal/chansim"
	"pinatubo/internal/cmdstream"
	"pinatubo/internal/memarch"
	"pinatubo/internal/pimrt"
)

// BatchOp is one operation of a batch: Dst = Op(Srcs...). The operand
// rules are exactly Apply's (OpPopcount takes no sources and counts Dst).
type BatchOp struct {
	Op   Op
	Dst  *BitVector
	Srcs []*BitVector
}

// BatchResult reports a batch execution: the per-op results Apply would
// have returned, plus the channel-level schedule of the whole batch.
type BatchResult struct {
	// Results[i] is op i's outcome, identical to what a sequential
	// Apply(ops[i]) at the same point would have returned (bit-identical
	// at fault rate 0; see Batch).
	Results []Result
	// Makespan is the scheduled end-to-end time of the batch on the
	// memory channels, with per-bank contention resolved by the
	// event-driven scheduler. At fault rate 0 it is bit-identical to the
	// PlanPoint.Makespan PlanWith predicts for the same op mix under the
	// same arbiter.
	Makespan time.Duration
	// Completion[i] is op i's finish time within the schedule.
	Completion []time.Duration
	// Sequential is the back-to-back time of the same requests with no
	// overlap — the baseline the batch's concurrency is measured against.
	Sequential time.Duration
	// Speedup is Sequential / Makespan.
	Speedup float64
	// Shards is how many isolated memory shards the data-side effects
	// executed across (1 means the batch ran sequentially on the live
	// system: single shard, or a fault-injected run that retired a row
	// mid-batch and was deterministically replayed in op order).
	Shards int
	// Arb is the arbitration policy the schedule used.
	Arb Arbiter
}

// Batch executes a set of operations as one scheduled batch under FIFO
// arbitration. See BatchWith.
func (s *System) Batch(ops []BatchOp) (BatchResult, error) {
	return s.BatchWith(ops, ArbFIFO)
}

// BatchWith executes a set of operations as one scheduled batch:
//
//  1. lower — every op is executed through the normal pipeline and its
//     full cmdstream program (requests, verification passes) captured;
//  2. schedule — the programs are converted to per-bank-resource requests
//     and run through the event-driven channel scheduler under arb;
//  3. execute — the data-side effects run concurrently across independent
//     shards: ops whose footprints (rows, scratch rows, global row
//     buffers, I/O buffers) are disjoint execute on isolated shard
//     memories in parallel, then merge deterministically.
//
// Results are indistinguishable from issuing the same ops sequentially
// through Apply: memory contents, per-op Results, Stats/FaultStats and
// hardware counters all match (integer counters exactly; summed float
// totals may differ from the sequential order by ULPs when more than one
// shard ran). Fault injection shards too: the injector draws every op's
// faults from a per-operation substream seeded by (Seed, op sequence
// number), so each shard replays exactly the faults sequential execution
// would have drawn, on a sandboxed copy of the injector's per-row state.
// The one case that cannot be sandboxed is a mid-batch row retirement
// (the remap must allocate from the live allocator); when a shard hits
// one, the sandboxes are discarded and the batch deterministically
// replays in op order on the live system (Shards reports 1).
//
// Ops whose operands span ranks are rejected: the paper's datapaths stop
// at the rank's I/O buffer, and Apply would reject them too. On error the
// batch's memory effects may be partial, exactly as a sequence of Apply
// calls stopped at the failing op.
func (s *System) BatchWith(ops []BatchOp, arb Arbiter) (BatchResult, error) {
	carb, err := arb.internal()
	if err != nil {
		return BatchResult{}, err
	}
	if len(ops) == 0 {
		return BatchResult{}, fmt.Errorf("pinatubo: empty batch")
	}
	footprints := make([][]fpKey, len(ops))
	for i, op := range ops {
		if err := s.validateOp(op.Op, op.Dst, op.Srcs); err != nil {
			return BatchResult{}, fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
		}
		fp, err := s.opFootprint(op)
		if err != nil {
			return BatchResult{}, fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
		}
		footprints[i] = fp
	}
	shards := shardOps(footprints)

	results := make([]Result, len(ops))
	progs := make([]cmdstream.Program, len(ops))
	nshards := len(shards)
	if nshards == 1 {
		if err := s.runSequential(ops, results, progs); err != nil {
			return BatchResult{}, err
		}
	} else {
		n, err := s.runSharded(ops, footprints, shards, results, progs)
		if err != nil {
			return BatchResult{}, err
		}
		nshards = n
	}

	timing := s.mem.Tech().Timing
	bus := s.ctl.Bus()
	banks := s.mem.Geometry().BanksPerChip
	reqs := make([]chansim.Request, len(ops))
	var back float64
	for i := range ops {
		reqs[i] = progs[i].Request(fmt.Sprintf("%v#%d", ops[i].Op, i), timing, bus, banks)
		back += reqs[i].Duration()
	}
	sched, err := chansim.ScheduleWith(reqs, carb)
	if err != nil {
		return BatchResult{}, err
	}
	out := BatchResult{
		Results:    results,
		Makespan:   seconds(sched.Makespan),
		Completion: make([]time.Duration, len(ops)),
		Sequential: seconds(back),
		Shards:     nshards,
		Arb:        arb,
	}
	for i, c := range sched.Completion {
		out.Completion[i] = seconds(c)
	}
	if sched.Makespan > 0 {
		out.Speedup = back / sched.Makespan
	}
	return out, nil
}

// fpKey names one exclusive hardware resource an op's data path may touch:
// a row, a bank's global row buffer, or a rank's I/O buffer. Ops whose key
// sets intersect must execute in program order; disjoint ops commute.
type fpKey struct {
	kind byte // 'r' row, 'g' global row buffer, 'i' I/O buffer
	addr memarch.RowAddr
}

// opFootprint computes the key set of one op, conservatively: every
// operand and destination row, the scratch row of every multi-row OR
// group, and — whenever the rows leave a single subarray — the global row
// buffer of every touched bank plus, across banks, the rank's I/O buffer.
// Over-approximation only costs concurrency, never correctness.
func (s *System) opFootprint(op BatchOp) ([]fpKey, error) {
	var keys []fpKey
	if op.Op == OpPopcount {
		for _, r := range op.Dst.rows {
			keys = s.appendRowKeys(keys, r)
		}
		return keys, nil
	}
	geo := s.mem.Geometry()
	for batch := range op.Dst.rows {
		all := make([]memarch.RowAddr, 0, len(op.Srcs)+1)
		for _, src := range op.Srcs {
			all = append(all, src.rows[batch])
		}
		srcRows := all
		all = append(all, op.Dst.rows[batch])
		if !memarch.SameRank(all...) {
			return nil, fmt.Errorf("operands span ranks; split the batch at the rank boundary")
		}
		for _, r := range all {
			keys = s.appendRowKeys(keys, r)
		}
		if op.Op == OpOr {
			for _, g := range pimrt.GroupBySubarray(srcRows) {
				if len(g) > 1 {
					keys = append(keys, fpKey{kind: 'r', addr: pimrt.ScratchRow(geo, g[0])})
				}
			}
		}
		if memarch.SameSubarray(all...) {
			continue
		}
		banks := make(map[[3]int]bool)
		for _, r := range all {
			b := [3]int{r.Channel, r.Rank, r.Bank}
			if banks[b] {
				continue
			}
			banks[b] = true
			keys = append(keys, fpKey{kind: 'g',
				addr: memarch.RowAddr{Channel: r.Channel, Rank: r.Rank, Bank: r.Bank}})
		}
		if len(banks) > 1 {
			keys = append(keys, fpKey{kind: 'i',
				addr: memarch.RowAddr{Channel: all[0].Channel, Rank: all[0].Rank}})
		}
	}
	return keys, nil
}

// appendRowKeys adds one row's footprint key plus — with the replication
// rung active — the keys of its replica copies: a voted activation senses
// them and a verified result re-syncs them, so they are part of the op's
// exclusive data path.
func (s *System) appendRowKeys(keys []fpKey, r memarch.RowAddr) []fpKey {
	keys = append(keys, fpKey{kind: 'r', addr: r})
	for _, rep := range s.replicaRows(r) {
		keys = append(keys, fpKey{kind: 'r', addr: rep})
	}
	return keys
}

// runSequential executes the batch's data-side effects in op order on the
// live system, capturing each op's program.
func (s *System) runSequential(ops []BatchOp, results []Result, progs []cmdstream.Program) error {
	for i, op := range ops {
		progs[i] = cmdstream.Program{}
		res, err := s.apply(op.Op, op.Dst, op.Srcs, &progs[i])
		if err != nil {
			return fmt.Errorf("pinatubo: batch op %d (%v): %w", i, op.Op, err)
		}
		results[i] = res
	}
	return nil
}

// shardOps unions ops that share any footprint key and returns the
// resulting shards as op-index lists, each ascending, ordered by first op.
func shardOps(footprints [][]fpKey) [][]int {
	parent := make([]int, len(footprints))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := make(map[fpKey]int)
	for i, fp := range footprints {
		for _, k := range fp {
			if j, ok := owner[k]; ok {
				parent[find(i)] = find(j)
			} else {
				owner[k] = i
			}
		}
	}
	index := make(map[int]int)
	var shards [][]int
	for i := range footprints {
		root := find(i)
		si, ok := index[root]
		if !ok {
			si = len(shards)
			index[root] = si
			shards = append(shards, nil)
		}
		shards[si] = append(shards[si], i)
	}
	return shards
}

// runSharded executes the batch's data-side effects concurrently: each
// shard gets a sandboxed System seeded with the shard's footprint rows,
// ECC state, replica registrations and per-row fault state, runs its ops
// in op order on its own goroutine, and is merged back — rows, ECC
// entries, wear/hardware/fault counters and stats — in shard order on the
// caller's goroutine. The merge is exact for every integer counter; float
// totals are summed in shard order, which can differ from the sequential
// op order by ULPs.
//
// With a fault injector attached, each shard's sandbox injector is pinned
// to the live injector's per-operation substream (op i draws substream
// opSeqBase+i, exactly what sequential execution would have drawn), so
// sharded faults are bit-identical to sequential ones. A shard that
// retires a row cannot stay sandboxed — the remap must come from the live
// allocator — so the sandboxes are discarded and the batch replays
// sequentially; the replay is deterministic because the live state was
// never touched. Returns the shard count actually used.
func (s *System) runSharded(ops []BatchOp, footprints [][]fpKey, shards [][]int, results []Result, progs []cmdstream.Program) (int, error) {
	type shardState struct {
		sys  *System
		vecs map[*BitVector]*BitVector
	}
	var opSeqBase int64
	liveInj := s.ctl.Injector()
	if liveInj != nil {
		opSeqBase = liveInj.OpSeq()
	}
	geo := s.mem.Geometry()
	states := make([]shardState, len(shards))
	for si, shard := range shards {
		sh, err := New(s.cfg)
		if err != nil {
			return 0, err
		}
		for _, i := range shard {
			for _, k := range footprints[i] {
				if k.kind != 'r' {
					continue
				}
				copy(sh.mem.PeekRow(k.addr), s.mem.PeekRow(k.addr))
				if bits, words, ok := s.ctl.ECCState(k.addr); ok {
					sh.ctl.SetECCState(k.addr, bits, words)
				}
				if reps := s.replicaRows(k.addr); reps != nil {
					sh.registerReplicas(k.addr, reps)
				}
				if liveInj != nil {
					if st, ok := liveInj.RowState(geo.Encode(k.addr)); ok {
						sh.ctl.Injector().SetRowState(geo.Encode(k.addr), st)
					}
				}
			}
		}
		vecs := make(map[*BitVector]*BitVector)
		mirror := func(b *BitVector) *BitVector {
			v, ok := vecs[b]
			if !ok {
				v = &BitVector{sys: sh, bits: b.bits,
					rows: append([]memarch.RowAddr(nil), b.rows...)}
				vecs[b] = v
			}
			return v
		}
		for _, i := range shard {
			mirror(ops[i].Dst)
			for _, src := range ops[i].Srcs {
				mirror(src)
			}
		}
		states[si] = shardState{sys: sh, vecs: vecs}
	}

	errs := make([]error, len(ops))
	var wg sync.WaitGroup
	for si, shard := range shards {
		wg.Add(1)
		go func(st shardState, idx []int) {
			defer wg.Done()
			inj := st.sys.ctl.Injector()
			for _, i := range idx {
				if inj != nil {
					// Pin the sandbox to op i's substream: apply's beginOp
					// advances it to opSeqBase+i+1, the exact stream the op
					// would draw running sequentially on the live system.
					inj.SetOpSeq(opSeqBase + int64(i))
				}
				srcs := make([]*BitVector, len(ops[i].Srcs))
				for j, src := range ops[i].Srcs {
					srcs[j] = st.vecs[src]
				}
				res, err := st.sys.apply(ops[i].Op, st.vecs[ops[i].Dst], srcs, &progs[i])
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = res
			}
		}(states[si], shard)
	}
	wg.Wait()

	if liveInj != nil {
		// A sandbox that touched its allocator hit a row retirement (remap,
		// replica teardown) or failed an op outright: its side effects
		// cannot merge into the live allocator's address space. The live
		// system was never touched, so replaying sequentially here yields
		// exactly the sequential execution — same substreams, same faults,
		// same remaps — at the cost of the concurrency.
		replay := false
		for i := range ops {
			if errs[i] != nil {
				replay = true
			}
		}
		for si := range shards {
			sh := states[si].sys
			if sh.alloc.AllocatedRows() != 0 || sh.alloc.RetiredRows() != 0 {
				replay = true
			}
		}
		if replay {
			for i := range results {
				results[i] = Result{}
			}
			if err := s.runSequential(ops, results, progs); err != nil {
				return 1, err
			}
			return 1, nil
		}
	}

	for si, shard := range shards {
		sh := states[si].sys
		for _, a := range sh.mem.MaterializedAddrs() {
			copy(s.mem.PeekRow(a), sh.mem.PeekRow(a))
		}
		sh.ctl.ECCEntries(func(a memarch.RowAddr, bits int, words []uint64) {
			s.ctl.SetECCState(a, bits, words)
		})
		s.mem.AbsorbCounters(sh.mem)
		s.ctl.AbsorbCounters(sh.ctl.Counters())
		s.sched.AbsorbStats(sh.sched.FaultStats())
		if liveInj != nil {
			shInj := sh.ctl.Injector()
			seen := make(map[uint64]bool)
			for _, i := range shard {
				for _, k := range footprints[i] {
					if k.kind != 'r' {
						continue
					}
					key := geo.Encode(k.addr)
					if seen[key] {
						continue
					}
					seen[key] = true
					st, _ := shInj.RowState(key)
					liveInj.SetRowState(key, st)
				}
			}
			liveInj.AbsorbStats(shInj.Stats())
		}
		for k, v := range sh.stats.Ops {
			s.stats.Ops[k] += v
		}
		s.stats.Requests += sh.stats.Requests
		s.stats.BusySeconds += sh.stats.BusySeconds
		s.stats.EnergyJoules += sh.stats.EnergyJoules
		s.hostVerifies += sh.hostVerifies
		s.hostRetries += sh.hostRetries
		s.hostRowsRetired += sh.hostRowsRetired
		s.hostBitsCorrected += sh.hostBitsCorrected
		s.hostEccDecodes += sh.hostEccDecodes
		s.hostEccCorrected += sh.hostEccCorrected
		s.hostEccUncorrectable += sh.hostEccUncorrectable
		for live, mirror := range states[si].vecs {
			copy(live.rows, mirror.rows)
		}
	}
	if liveInj != nil {
		// Leave the live injector where sequential execution would have:
		// the next public op begins substream opSeqBase+len(ops)+1.
		liveInj.SetOpSeq(opSeqBase + int64(len(ops)))
	}
	for i := range ops {
		if errs[i] != nil {
			return len(shards), fmt.Errorf("pinatubo: batch op %d (%v): %w", i, ops[i].Op, errs[i])
		}
	}
	return len(shards), nil
}

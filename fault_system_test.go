package pinatubo

import (
	"math/rand"
	"testing"

	"pinatubo/internal/bitvec"
)

// faultySys builds a system with the given fault configuration.
func faultySys(t testing.TB, fc FaultConfig) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Fault = fc
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// The issue's acceptance criterion: at a sense-flip rate that corrupts the
// majority of 128-row ORs (λ ≈ 3 flipped bits per deep OR at this rate and
// vector length), every Or/And/Xor/Not result must still match the bitwise
// golden model — the verify-retry-degrade ladder never returns wrong data —
// and FaultStats must show the ladder actually worked for it.
func TestFaultyOpsNeverReturnWrongBits(t *testing.T) {
	s := faultySys(t, FaultConfig{Seed: 1, SenseFlipRate: 1e-4})
	const bits = 1 << 16
	w := bitvec.WordsFor(bits)
	rng := rand.New(rand.NewSource(2))

	vs, err := s.AllocGroup(128, bits)
	if err != nil {
		t.Fatal(err)
	}
	golden := make([][]uint64, len(vs))
	for i, v := range vs {
		golden[i] = make([]uint64, w)
		for j := range golden[i] {
			golden[i][j] = rng.Uint64()
		}
		if _, err := s.Write(v, golden[i]); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := s.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, want func(j int) uint64) {
		t.Helper()
		got, _, err := s.Read(dst)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		for j := 0; j < w; j++ {
			if got[j] != want(j) {
				t.Fatalf("%s: word %d wrong despite resilience", name, j)
			}
		}
	}

	// Deep OR over all 128 rows — the op the fault model hits hardest.
	res, err := s.Or(dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	check("or128", func(j int) uint64 {
		var or uint64
		for i := range golden {
			or |= golden[i][j]
		}
		return or
	})
	if res.Requests == 0 {
		t.Fatal("no requests recorded")
	}

	// Several more deep ORs so the retry statistics are unambiguous.
	for k := 0; k < 9; k++ {
		if _, err := s.Or(dst, vs...); err != nil {
			t.Fatal(err)
		}
	}

	if _, err := s.And(dst, vs[0], vs[1]); err != nil {
		t.Fatal(err)
	}
	check("and", func(j int) uint64 { return golden[0][j] & golden[1][j] })

	if _, err := s.Xor(dst, vs[2], vs[3]); err != nil {
		t.Fatal(err)
	}
	check("xor", func(j int) uint64 { return golden[2][j] ^ golden[3][j] })

	if _, err := s.Not(dst, vs[4]); err != nil {
		t.Fatal(err)
	}
	tailMask := uint64(1)<<(bits%64) - 1
	if bits%64 == 0 {
		tailMask = ^uint64(0)
	}
	check("not", func(j int) uint64 {
		out := ^golden[4][j]
		if j == w-1 {
			out &= tailMask
		}
		return out
	})

	st := s.FaultStats()
	if st.SenseFlips == 0 {
		t.Fatalf("the injector never fired: %+v", st)
	}
	if st.Verifies == 0 || st.Retries == 0 {
		t.Fatalf("resilience layer shows no activity: %+v", st)
	}
}

func TestFaultStatsReportDegradations(t *testing.T) {
	// Flip rate 1 forces every deep OR down the depth-split rung and every
	// AND onto the digital inter path.
	s := faultySys(t, FaultConfig{Seed: 3, SenseFlipRate: 1})
	const bits = 4096
	vs, err := s.AllocGroup(128, bits)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if _, err := s.Write(v, []uint64{^uint64(0)}); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := s.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Or(dst, vs...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded == "" || res.Retries == 0 {
		t.Fatalf("deep OR at flip rate 1 reported no degradation: %+v", res)
	}
	if _, err := s.And(dst, vs[0], vs[1]); err != nil {
		t.Fatal(err)
	}
	st := s.FaultStats()
	if st.DepthReductions == 0 || st.InterFallbacks == 0 {
		t.Fatalf("expected depth-split and inter fallbacks: %+v", st)
	}
	if st.BitsCorrected == 0 {
		t.Fatalf("no corrected bits: %+v", st)
	}
}

func TestWearRetiresRowsThroughPublicAPI(t *testing.T) {
	s := faultySys(t, FaultConfig{Seed: 7, WearLimit: 2})
	// Full-row vector: stuck-at positions are drawn across the whole row,
	// so the vector must cover it for the damage to be observable.
	bits := s.RowBits()
	v, err := s.Alloc(bits)
	if err != nil {
		t.Fatal(err)
	}
	ones := make([]uint64, bitvec.WordsFor(bits))
	for i := range ones {
		ones[i] = ^uint64(0)
	}
	// Rewriting the same vector wears its row out; the write path must
	// verify, retire and remap so the vector always holds true data.
	for i := 0; i < 30; i++ {
		if _, err := s.Write(v, ones); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Read(v)
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != ones[j] {
				t.Fatalf("write %d: word %d corrupted by wear", i, j)
			}
		}
	}
	st := s.FaultStats()
	if st.RowWrites == 0 {
		t.Fatalf("wear model saw no writes: %+v", st)
	}
	if st.RowsRetired == 0 {
		t.Fatalf("30 rewrites at WearLimit=2 retired nothing: %+v", st)
	}
}

// With Config.Fault zeroed the system must follow the exact seed code path:
// identical latency/energy, no resilience fields set, empty fault stats.
func TestZeroFaultConfigIsBitIdentical(t *testing.T) {
	run := func(cfg Config) (Result, Result, Stats) {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		const bits = 1 << 14
		vs, err := s.AllocGroup(64, bits)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		for _, v := range vs {
			words := make([]uint64, bitvec.WordsFor(bits))
			for j := range words {
				words[j] = rng.Uint64()
			}
			if _, err := s.Write(v, words); err != nil {
				t.Fatal(err)
			}
		}
		dst, err := s.Alloc(bits)
		if err != nil {
			t.Fatal(err)
		}
		orRes, err := s.Or(dst, vs...)
		if err != nil {
			t.Fatal(err)
		}
		andRes, err := s.And(dst, vs[0], vs[1])
		if err != nil {
			t.Fatal(err)
		}
		if fs := s.FaultStats(); fs != (FaultStats{}) {
			t.Fatalf("fault stats nonzero without faults: %+v", fs)
		}
		return orRes, andRes, s.Stats()
	}

	// Setting only the seed (or drift) does not enable injection; both must
	// match the plain default config number for number.
	base := DefaultConfig()
	seeded := DefaultConfig()
	seeded.Fault.Seed = 12345

	or1, and1, st1 := run(base)
	or2, and2, st2 := run(seeded)
	if or1 != or2 || and1 != and2 {
		t.Fatalf("zeroed fault config changed op results:\n%+v\n%+v", or1, or2)
	}
	if st1.BusySeconds != st2.BusySeconds || st1.EnergyJoules != st2.EnergyJoules {
		t.Fatalf("zeroed fault config changed totals: %+v vs %+v", st1, st2)
	}
	if or1.Retries != 0 || or1.Degraded != "" || or1.BitsCorrected != 0 {
		t.Fatalf("resilience fields set without faults: %+v", or1)
	}

	// Replicate without an active resilience layer (VerifyAuto at fault
	// rate 0 resolves to VerifyOff) must be fully inert: same results,
	// same totals, no replica rows allocated, no votes.
	replicated := DefaultConfig()
	replicated.Resilience.Replicate = 3
	or3, and3, st3 := run(replicated)
	if or1 != or3 || and1 != and3 {
		t.Fatalf("inert Replicate=3 changed op results:\n%+v\n%+v", or1, or3)
	}
	if st1.BusySeconds != st3.BusySeconds || st1.EnergyJoules != st3.EnergyJoules {
		t.Fatalf("inert Replicate=3 changed totals: %+v vs %+v", st1, st3)
	}
}
